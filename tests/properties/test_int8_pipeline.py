"""Property tests: the INT8 pipeline's sparse==dense bit-identity.

The quantized executor accumulates INT8 products exactly in INT32 and
reduces checksums in a working dtype where every reachable value is an
exact integer, so the sparse re-reduction contract of DESIGN.md §1.3
holds with *no* tolerance at all: for every sparse-capable scheme,
every fault kind, both fault paths, and any trial mix,
``inject_batch(..., sparse=True)`` on an ``@int8`` scheme must be
bit-identical to the dense batched path — verdicts, residuals,
accumulators, and dequantized FP16 outputs alike.  A second family
pins worker-count invariance: sharding an INT8 campaign across
processes may change *when* a trial runs, never what it reports.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abft import list_schemes, scheme_from_token
from repro.faults import FaultCampaign

from test_batch_equivalence import (
    TILE,
    _draw_spec,
    _operands,
    assert_outcomes_identical,
    make_scheme,
)

INT8_SPARSE_SCHEMES = [
    name for name in list_schemes() if make_scheme(name).supports_sparse
] + ["global_multi"]

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def _int8_scheme(name):
    if name == "global_multi":
        return scheme_from_token("global_multi:2@int8")
    return scheme_from_token(f"{name}@int8")


class TestInt8SparseMatchesDense:
    @given(name=st.sampled_from(INT8_SPARSE_SCHEMES), seed=seeds, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_sparse_batch_matches_dense_batch(self, name, seed, data):
        """Any trial mix on the quantized executor: outcome i == outcome i."""
        a, b = _operands(seed)
        scheme = _int8_scheme(name)
        assert scheme.dtype == "int8"
        prepared = scheme.prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            tuple(
                _draw_spec(data, rows, cols)
                for _ in range(data.draw(st.integers(0, 3)))
            )
            for _ in range(data.draw(st.integers(1, 5)))
        ]
        dense = prepared.inject_batch(trials, sparse=False)
        sparse = prepared.inject_batch(trials, sparse=True)
        for d, s in zip(dense, sparse):
            assert_outcomes_identical(d, s)

    @given(name=st.sampled_from(INT8_SPARSE_SCHEMES), seed=seeds, data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_sparse_matches_sequential_inject(self, name, seed, data):
        """Transitively: INT8 sparse trials match one-at-a-time injects."""
        a, b = _operands(seed)
        prepared = _int8_scheme(name).prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            (_draw_spec(data, rows, cols),)
            for _ in range(data.draw(st.integers(1, 3)))
        ]
        sparse = prepared.inject_batch(trials, sparse=True)
        for faults, outcome in zip(trials, sparse):
            assert_outcomes_identical(
                prepared.inject_batch([faults], sparse=False)[0], outcome
            )


class TestInt8WorkerInvariance:
    @pytest.mark.parametrize("scheme_name", ["global", "thread_onesided"])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_int8_campaign_matches_in_process(self, scheme_name, workers):
        """INT8 campaign verdicts are identical at any worker count."""
        a, b = _operands(31, m=48, n=40, k=32)
        drawn = FaultCampaign(
            _int8_scheme(scheme_name), a, b, seed=5
        ).draw_faults(24)

        def run(n_workers=None):
            return FaultCampaign(
                _int8_scheme(scheme_name), a, b, seed=5
            ).run(0, specs=drawn, workers=n_workers)

        single = run()
        sharded = run(workers)
        assert [t.detected for t in sharded.trials] == [
            t.detected for t in single.trials
        ]
        assert [t.significant for t in sharded.trials] == [
            t.significant for t in single.trials
        ]
        assert sharded.coverage == single.coverage
