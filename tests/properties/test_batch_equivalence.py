"""Property tests: the batched injection engine equals sequential injection.

The contract pinned here is the batched engine's whole reason to be
trusted: for every scheme, every fault kind, both fault paths, and any
mix of trials, ``PreparedExecution.inject_batch`` must be bit-identical
— element for element — to running the same trials through sequential
``inject`` calls.  A second family of properties pins the vectorized
fault application against the scalar injector it replaces.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.abft import MultiChecksumGlobalABFT, get_scheme, list_schemes
from repro.faults import FaultKind, FaultPath, FaultSpec
from repro.faults.injector import apply_fault_batch, apply_fault_to_accumulator
from repro.gemm import TileConfig

TILE = TileConfig(mb=32, nb=32, kb=32, mw=16, nw=16, mt=4, nt=2)

ALL_SCHEMES = list_schemes() + ["global_multi"]

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)
kinds = st.sampled_from(list(FaultKind))
paths = st.sampled_from(list(FaultPath))
values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def make_scheme(name):
    if name == "global_multi":
        return MultiChecksumGlobalABFT(num_checksums=2)
    return get_scheme(name)


def _operands(seed, m=24, n=20, k=16):
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((k, n)) * 0.5).astype(np.float16)
    return a, b


def _draw_spec(data, rows, cols):
    kind = data.draw(kinds)
    row = data.draw(st.integers(0, rows - 1))
    col = data.draw(st.integers(0, cols - 1))
    path = data.draw(paths)
    if kind in (FaultKind.ADD, FaultKind.SET):
        return FaultSpec(
            row=row, col=col, kind=kind, value=data.draw(values), path=path
        )
    bits = 16 if kind is FaultKind.BITFLIP_FP16 else 32
    bit = data.draw(st.integers(0, bits - 1))
    return FaultSpec(row=row, col=col, kind=kind, bit=bit, path=path)


def _floats_identical(x, y):
    return x == y or (np.isnan(x) and np.isnan(y))


def assert_verdicts_identical(v1, v2):
    """Field-wise CheckVerdict equality treating NaN == NaN.

    A fault can poison the magnitude bound itself (replication bounds
    by |C|), making the reported tolerance NaN on both paths; dataclass
    ``==`` would call that a mismatch.
    """
    if v1 is None or v2 is None:
        assert v1 is None and v2 is None
        return
    assert v1.detected == v2.detected
    assert v1.violations == v2.violations
    assert v1.checks == v2.checks
    assert _floats_identical(v1.max_residual, v2.max_residual)
    assert _floats_identical(v1.tolerance, v2.tolerance)


def assert_outcomes_identical(sequential, batched):
    assert sequential.scheme == batched.scheme
    assert sequential.injected == batched.injected
    assert np.array_equal(
        sequential.c_accumulator, batched.c_accumulator, equal_nan=True
    )
    assert np.array_equal(sequential.c, batched.c, equal_nan=True)
    assert_verdicts_identical(sequential.verdict, batched.verdict)


class TestInjectBatchEquivalence:
    @given(name=st.sampled_from(ALL_SCHEMES), seed=seeds, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_sequential_injects(self, name, seed, data):
        """Any mix of trials: batch slice i == sequential inject i."""
        a, b = _operands(seed)
        prepared = make_scheme(name).prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            tuple(
                _draw_spec(data, rows, cols)
                for _ in range(data.draw(st.integers(0, 2)))
            )
            for _ in range(data.draw(st.integers(1, 5)))
        ]
        batched = prepared.inject_batch(trials)
        for faults, outcome in zip(trials, batched):
            assert_outcomes_identical(prepared.inject(faults), outcome)

    @given(name=st.sampled_from(ALL_SCHEMES), seed=seeds, data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_batch_equals_execute(self, name, seed, data):
        """Transitively: batch trials match from-scratch execute calls."""
        a, b = _operands(seed)
        scheme = make_scheme(name)
        prepared = scheme.prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            (_draw_spec(data, rows, cols),)
            for _ in range(data.draw(st.integers(1, 3)))
        ]
        batched = prepared.inject_batch(trials)
        for faults, outcome in zip(trials, batched):
            direct = make_scheme(name).execute(a, b, tile=TILE, faults=faults)
            assert_outcomes_identical(direct, outcome)


class TestApplyFaultBatchEquivalence:
    @given(
        seed=seeds,
        kind=kinds,
        bit=st.integers(0, 15),
        value=st.floats(width=32, allow_nan=True, allow_infinity=True),
        scale=st.sampled_from([1e-3, 1.0, 1e4, 1e30]),
    )
    @settings(max_examples=120, deadline=None)
    def test_vectorized_application_matches_scalar(
        self, seed, kind, bit, value, scale
    ):
        """One fancy-indexed application == the scalar injector, for
        every kind, including flips into the inf/NaN space."""
        rng = np.random.default_rng(seed)
        clean = (rng.standard_normal((6, 8)) * scale).astype(np.float32)
        spec = FaultSpec(row=2, col=3, kind=kind, bit=bit, value=value)

        scalar = clean.copy()
        apply_fault_to_accumulator(scalar, spec)

        batch = np.broadcast_to(clean, (3, 6, 8)).copy()
        apply_fault_batch(batch, np.array([1]), [spec])

        assert np.array_equal(batch[0], clean, equal_nan=True)
        assert np.array_equal(batch[2], clean, equal_nan=True)
        # Bit-level equality, not just value equality: the stored word
        # must match the scalar path's exactly (NaN quieting included).
        assert np.array_equal(
            batch[1].view(np.uint32), scalar.view(np.uint32)
        )
