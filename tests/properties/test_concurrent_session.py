"""Threaded stress: one ProtectedSession under N concurrent drivers.

The serving layer's contract (DESIGN.md §5): a session is shared
mutable state — prepared cache, lazily built comparison state,
synthesized-operand memo, the inference engine's weight cache and
operand record — and all of it is lock-guarded such that N threads
driving mixed forward-pass and campaign traffic observe exactly what a
serial driver observes.  These tests race real threads through both
session realizations and assert bit-identity with serial execution,
exactly-once preparation, and no cross-talk between recorded operands.
"""

import threading

import numpy as np
import pytest

import repro
from repro.gemm.executor import EXECUTION_STATS
from repro.nn import build_runnable, runnable_input_shape

N_THREADS = 8
TRIALS = 40


def _race(n_threads, work):
    """Start ``n_threads`` running ``work(i)`` behind one barrier.

    Returns per-thread results; re-raises the first worker exception.
    """
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads
    errors = []

    def driver(i):
        try:
            barrier.wait()
            results[i] = work(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=driver, args=(i,), name=f"stress-{i}")
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


def _record_key(record):
    delta = record.delta
    return (
        record.faults,
        "nan" if np.isnan(delta) else delta,
        record.detected,
        record.significant,
        record.benign_alarm,
    )


def _campaign_keys(session, layer, seed):
    campaign = session.campaign(layer, seed=seed)
    return [_record_key(r) for r in campaign.run_batch(TRIALS).trials]


class TestLayerGemmSessionStress:
    def test_racing_passes_prepare_each_layer_exactly_once(self):
        session = repro.deploy("mlp_bottom", "T4", batch=16)
        before = EXECUTION_STATS.gemms
        outputs = _race(N_THREADS, lambda i: session.run().output)
        clean_gemms = EXECUTION_STATS.gemms - before
        # Preparation is exactly-once per layer even under the race —
        # the cache's prepare-inside-lock contract, measured.
        assert clean_gemms == len(session.plan)
        serial = repro.deploy("mlp_bottom", "T4", batch=16).run().output
        for output in outputs:
            np.testing.assert_array_equal(output, serial)

    def test_mixed_forward_and_campaign_traffic_matches_serial(self):
        threaded = repro.deploy("mlp_bottom", "T4", batch=16)
        layers = threaded.plan.layer_names

        def work(i):
            layer = layers[i % len(layers)]
            if i % 2:
                return ("run", threaded.run().output)
            return ("campaign", layer, _campaign_keys(threaded, layer, i))

        results = _race(N_THREADS, work)

        serial = repro.deploy("mlp_bottom", "T4", batch=16)
        serial_output = serial.run().output
        for i, result in enumerate(results):
            if result[0] == "run":
                np.testing.assert_array_equal(result[1], serial_output)
            else:
                _, layer, keys = result
                assert keys == _campaign_keys(serial, layer, i), (
                    f"campaign records diverged on layer {layer!r} "
                    f"(seed {i}) under concurrency"
                )

    def test_racing_campaigns_on_one_layer_share_one_preparation(self):
        session = repro.deploy("mlp_bottom", "T4", batch=16)
        layer = session.plan.layer_names[0]
        before = EXECUTION_STATS.gemms
        keys = _race(4, lambda i: _campaign_keys(session, layer, 7))
        assert EXECUTION_STATS.gemms - before == 1
        # Same layer + same seed: every thread saw identical trials.
        assert all(k == keys[0] for k in keys)


class TestNumericSessionStress:
    @pytest.fixture()
    def deployed(self):
        batch = 4
        runnable = build_runnable("mlp_bottom", batch=batch, seed=3)
        session = repro.deploy(
            "mlp_bottom", "T4", batch=batch, runnable=runnable
        )
        x = (
            np.random.default_rng([3, 1])
            .standard_normal(runnable_input_shape("mlp_bottom", batch=batch))
            * 0.5
        ).astype(np.float16)
        return session, x

    def test_recorded_operands_bit_identical_with_serial(self, deployed):
        session, x = deployed
        outputs = _race(N_THREADS, lambda i: session.run(x).output)

        serial_runnable = build_runnable("mlp_bottom", batch=4, seed=3)
        serial = repro.deploy(
            "mlp_bottom", "T4", batch=4, runnable=serial_runnable
        )
        serial_output = serial.run(x).output
        for output in outputs:
            np.testing.assert_array_equal(output, serial_output)
        # The operand record is the campaign attack surface: racing
        # passes over one input must leave exactly the serial record.
        assert set(session.engine.recorded_operands) == set(
            serial.engine.recorded_operands
        )
        for name, (a, b, tile) in serial.engine.recorded_operands.items():
            ra, rb, rtile = session.engine.recorded_operands[name]
            np.testing.assert_array_equal(ra, a)
            np.testing.assert_array_equal(rb, b)
            assert rtile == tile

    def test_no_cross_talk_between_per_thread_inputs(self, deployed):
        session, x = deployed
        rng = np.random.default_rng(11)
        inputs = [
            (rng.standard_normal(x.shape) * 0.5).astype(np.float16)
            for _ in range(N_THREADS)
        ]

        def work(i):
            return session.run(inputs[i]).output

        outputs = _race(N_THREADS, work)
        # Each thread's output is its own input's serial answer — a
        # pass never observes another thread's activations mid-flight.
        fresh_runnable = build_runnable("mlp_bottom", batch=4, seed=3)
        fresh = repro.deploy(
            "mlp_bottom", "T4", batch=4, runnable=fresh_runnable
        )
        for i, output in enumerate(outputs):
            np.testing.assert_array_equal(output, fresh.run(inputs[i]).output)
        # And the committed record is one whole pass, not an
        # interleaving: the (a, b) pair of every layer must belong to
        # a single input's activation flow.
        recorded = session.engine.recorded_operands
        candidates = []
        for inp in inputs:
            fresh.run(inp)
            candidates.append({
                name: fresh.engine.recorded_operands[name][0].tobytes()
                for name in recorded
            })
        observed = {
            name: recorded[name][0].tobytes() for name in recorded
        }
        assert observed in candidates, (
            "recorded operands mix activations from different passes"
        )

    def test_concurrent_campaigns_over_recorded_operands(self, deployed):
        session, x = deployed
        session.run(x)
        layers = session.plan.layer_names

        def work(i):
            layer = layers[i % len(layers)]
            return layer, i, _campaign_keys(session, layer, i)

        results = _race(N_THREADS, work)

        serial_runnable = build_runnable("mlp_bottom", batch=4, seed=3)
        serial = repro.deploy(
            "mlp_bottom", "T4", batch=4, runnable=serial_runnable
        )
        serial.run(x)
        for layer, seed, keys in results:
            assert keys == _campaign_keys(serial, layer, seed)
