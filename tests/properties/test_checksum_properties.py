"""Property-based tests (hypothesis) for ABFT invariants.

These pin the mathematical core of the paper: checksum identities hold
for arbitrary matrices, clean data never raises an alarm, and any
sufficiently large single-output corruption is always detected.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.abft import get_scheme
from repro.abft.checksums import (
    global_checksums,
    one_sided_checksums,
    one_sided_output_rowsums,
    output_summation,
    thread_tile_sums,
    two_sided_checksums,
)
from repro.faults import FaultKind, FaultSpec
from repro.gemm import GemmProblem, TileConfig, TiledGemm

TILE = TileConfig(mb=32, nb=32, kb=32, mw=16, nw=16, mt=4, nt=2)

dims = st.integers(min_value=1, max_value=40)
seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def _operands(m, n, k, seed, scale=0.5):
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) * scale).astype(np.float16)
    b = (rng.standard_normal((k, n)) * scale).astype(np.float16)
    return a, b


class TestChecksumIdentities:
    @given(m=dims, n=dims, k=dims, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_global_invariant(self, m, n, k, seed):
        a, b = _operands(m, n, k, seed)
        ex = TiledGemm(GemmProblem(m, n, k), TILE)
        a_pad, b_pad = ex.pad_a(a), ex.pad_b(b)
        c = ex.multiply(a_pad, b_pad)
        chks = global_checksums(a_pad, b_pad)
        tol = 1e-3 * max(chks.magnitude, 1.0) * 2 ** -20 + 1e-3
        assert abs(chks.reference - output_summation(c)) < max(tol, 1e-2)

    @given(m=dims, n=dims, k=dims, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_one_sided_invariant(self, m, n, k, seed):
        a, b = _operands(m, n, k, seed)
        ex = TiledGemm(GemmProblem(m, n, k), TILE)
        a_pad, b_pad = ex.pad_a(a), ex.pad_b(b)
        c = ex.multiply(a_pad, b_pad)
        chks = one_sided_checksums(ex, a_pad, b_pad)
        np.testing.assert_allclose(
            chks.reference, one_sided_output_rowsums(ex, c), rtol=1e-3, atol=1e-2
        )

    @given(m=dims, n=dims, k=dims, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_two_sided_invariant(self, m, n, k, seed):
        a, b = _operands(m, n, k, seed)
        ex = TiledGemm(GemmProblem(m, n, k), TILE)
        a_pad, b_pad = ex.pad_a(a), ex.pad_b(b)
        c = ex.multiply(a_pad, b_pad)
        chks = two_sided_checksums(ex, a_pad, b_pad)
        np.testing.assert_allclose(
            chks.reference, thread_tile_sums(ex, c), rtol=1e-3, atol=1e-2
        )


class TestDetectionProperties:
    @given(m=dims, n=dims, k=dims, seed=seeds,
           scheme=st.sampled_from(["global", "thread_onesided", "thread_twosided",
                                   "replication_single"]))
    @settings(max_examples=30, deadline=None)
    def test_no_false_positives(self, m, n, k, seed, scheme):
        a, b = _operands(m, n, k, seed)
        assert not get_scheme(scheme).execute(a, b, tile=TILE).detected

    @given(m=st.integers(4, 40), n=st.integers(4, 40), k=st.integers(4, 40),
           seed=seeds, row=st.integers(0, 1000), col=st.integers(0, 1000),
           scheme=st.sampled_from(["global", "thread_onesided", "thread_twosided",
                                   "replication_single", "replication_traditional"]))
    @settings(max_examples=40, deadline=None)
    def test_large_fault_always_detected(self, m, n, k, seed, row, col, scheme):
        a, b = _operands(m, n, k, seed)
        # A corruption far above any rounding noise for these sizes.
        fault = FaultSpec(row=row % m, col=col % n, kind=FaultKind.ADD, value=500.0)
        outcome = get_scheme(scheme).execute(a, b, tile=TILE, faults=[fault])
        assert outcome.detected

    @given(m=st.integers(4, 32), n=st.integers(4, 32), k=st.integers(4, 32),
           seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_detection_is_sound_for_unprotected(self, m, n, k, seed):
        a, b = _operands(m, n, k, seed)
        fault = FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=500.0)
        assert not get_scheme("none").execute(a, b, tile=TILE, faults=[fault]).detected


class TestExecutorProperties:
    @given(m=dims, n=dims, k=dims, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_executor_matches_reference(self, m, n, k, seed):
        from repro.gemm import reference_gemm

        a, b = _operands(m, n, k, seed)
        ex = TiledGemm(GemmProblem(m, n, k), TILE)
        got = ex.crop(ex.run(a, b))
        np.testing.assert_allclose(got, reference_gemm(a, b), rtol=1e-4, atol=1e-3)

    @given(m=dims, n=dims, k=dims)
    @settings(max_examples=50, deadline=None)
    def test_padding_invariants(self, m, n, k):
        p = GemmProblem(m, n, k)
        assert p.m_pad % 8 == 0 and p.n_pad % 8 == 0 and p.k_pad % 8 == 0
        assert 0 <= p.m_pad - m < 8
        ex = TiledGemm(p, TILE)
        assert ex.m_full % TILE.mt == 0 and ex.n_full % TILE.nt == 0


class TestProblemProperties:
    @given(m=st.integers(1, 4096), n=st.integers(1, 4096), k=st.integers(1, 4096))
    @settings(max_examples=60, deadline=None)
    def test_intensity_positive_and_bounded(self, m, n, k):
        p = GemmProblem(m, n, k)
        ai = p.arithmetic_intensity()
        # AI = MNK/(MK+KN+MN) <= min(M,N,K) (padded dims).
        assert 0 < ai <= min(p.m_pad, p.n_pad, p.k_pad)

    @given(m=st.integers(1, 512), n=st.integers(1, 512), k=st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_padded_accounting_dominates_unpadded(self, m, n, k):
        p = GemmProblem(m, n, k)
        assert p.flops(padded=True) >= p.flops(padded=False)
        assert p.bytes_moved(padded=True) >= p.bytes_moved(padded=False)
