"""Property tests: sparse re-reduction equals the dense batched path.

The bit-exactness contract of DESIGN.md §1.3, pinned element-wise: for
every sparse-capable scheme, every fault kind, both fault paths, and
any mix of trials — including multiple faults landing in the *same*
reduction slice — ``inject_batch(..., sparse=True)`` must produce
outcomes bit-identical to ``inject_batch(..., sparse=False)``: same
verdict fields, same check residuals, same lazily materialized
accumulators, same FP16 outputs.  A second family pins the fault→site
valuation (:func:`repro.faults.injector.faulted_site_values`) against
reading the struck elements out of the dense stacked accumulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abft import MultiChecksumGlobalABFT, get_scheme, list_schemes
from repro.errors import ConfigurationError
from repro.faults import FaultKind, FaultPath, FaultSpec
from repro.faults.injector import faulted_site_values
from repro.gemm import TileConfig

from test_batch_equivalence import (
    assert_outcomes_identical,
    make_scheme,
    _draw_spec,
    _operands,
)

TILE = TileConfig(mb=32, nb=32, kb=32, mw=16, nw=16, mt=4, nt=2)

ALL_SCHEMES = list_schemes() + ["global_multi"]
SPARSE_SCHEMES = [
    name for name in ALL_SCHEMES
    if (MultiChecksumGlobalABFT(2) if name == "global_multi"
        else get_scheme(name)).supports_sparse
]

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


class TestSparseMatchesDense:
    @given(name=st.sampled_from(SPARSE_SCHEMES), seed=seeds, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_sparse_batch_matches_dense_batch(self, name, seed, data):
        """Any trial mix: sparse outcome i == dense outcome i, bit for bit."""
        a, b = _operands(seed)
        prepared = make_scheme(name).prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            tuple(
                _draw_spec(data, rows, cols)
                for _ in range(data.draw(st.integers(0, 3)))
            )
            for _ in range(data.draw(st.integers(1, 5)))
        ]
        dense = prepared.inject_batch(trials, sparse=False)
        sparse = prepared.inject_batch(trials, sparse=True)
        for d, s in zip(dense, sparse):
            assert_outcomes_identical(d, s)

    @given(name=st.sampled_from(SPARSE_SCHEMES), seed=seeds, data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_sparse_matches_sequential_inject(self, name, seed, data):
        """Transitively: sparse trials match one-at-a-time injects."""
        a, b = _operands(seed)
        prepared = make_scheme(name).prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            (_draw_spec(data, rows, cols),)
            for _ in range(data.draw(st.integers(1, 3)))
        ]
        sparse = prepared.inject_batch(trials, sparse=True)
        for faults, outcome in zip(trials, sparse):
            assert_outcomes_identical(
                prepared.inject_batch([faults], sparse=False)[0], outcome
            )

    @given(name=st.sampled_from(SPARSE_SCHEMES), seed=seeds, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_multi_fault_trials_sparse_matches_dense(self, name, seed, data):
        """Campaign-sized fault sets (every trial strictly multi-fault,
        the §2.4 workload): sparse outcome i == dense outcome i, bit
        for bit, including checksum-path faults in the mix."""
        a, b = _operands(seed)
        prepared = make_scheme(name).prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            tuple(
                _draw_spec(data, rows, cols)
                for _ in range(data.draw(st.integers(2, 6)))
            )
            for _ in range(data.draw(st.integers(1, 4)))
        ]
        dense = prepared.inject_batch(trials, sparse=False)
        sparse = prepared.inject_batch(trials, sparse=True)
        for d, s in zip(dense, sparse):
            assert_outcomes_identical(d, s)

    @pytest.mark.parametrize("name", SPARSE_SCHEMES)
    def test_multiple_faults_in_one_slice(self, name):
        """Two faults in the same reduction slice — and the same element
        twice — must re-reduce that slice once with both applied, in
        spec order, exactly like the dense path."""
        a, b = _operands(7)
        prepared = make_scheme(name).prepare(a, b, tile=TILE)
        same_slice = (
            # TILE has nt=2, mt=4: (1, 0) and (1, 1) share the one-sided
            # row-sum slice; all three sites share the (0, 0) thread tile.
            FaultSpec(row=1, col=0, kind=FaultKind.ADD, value=5.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=-9.0),
            FaultSpec(row=1, col=0, kind=FaultKind.SET, value=2.5),
        )
        ordered = (
            FaultSpec(row=2, col=3, kind=FaultKind.SET, value=8.0),
            FaultSpec(row=2, col=3, kind=FaultKind.BITFLIP_FP32, bit=30),
        )
        trials = [same_slice, ordered, (), same_slice + ordered]
        dense = prepared.inject_batch(trials, sparse=False)
        sparse = prepared.inject_batch(trials, sparse=True)
        for d, s in zip(dense, sparse):
            assert_outcomes_identical(d, s)

    @pytest.mark.parametrize(
        "name", sorted(set(ALL_SCHEMES) - set(SPARSE_SCHEMES))
    )
    def test_unsupported_scheme_rejects_forced_sparse(self, name):
        a, b = _operands(3)
        prepared = make_scheme(name).prepare(a, b, tile=TILE)
        trial = (FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=3.0),)
        with pytest.raises(ConfigurationError):
            prepared.inject_batch([trial], sparse=True)
        # Auto mode silently stays dense for these schemes.
        outcome = prepared.inject_batch([trial])[0]
        assert np.isfinite(outcome.c_accumulator).all()


class TestFaultedSiteValues:
    @given(seed=seeds, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_site_values_match_dense_accumulator(self, seed, data):
        """Site valuation == reading the struck elements of the dense
        stacked accumulator, for any kind/path mix and repeat strikes."""
        from repro.abft.base import Scheme

        rng = np.random.default_rng(seed)
        clean = (rng.standard_normal((12, 10)) * 10.0).astype(np.float32)
        trials = [
            tuple(
                _draw_spec(data, *clean.shape)
                for _ in range(data.draw(st.integers(0, 4)))
            )
            for _ in range(data.draw(st.integers(1, 6)))
        ]
        sites = faulted_site_values(clean, trials)
        c_batch = Scheme._apply_original_faults_batch(clean, trials)
        # Bit-level equality against the dense batch, NaN patterns included.
        gathered = c_batch[sites.trials, sites.rows, sites.cols]
        assert np.array_equal(
            sites.values.view(np.uint32), gathered.view(np.uint32)
        )
        # Completeness: zeroing the sites back to clean recovers c_clean.
        c_batch[sites.trials, sites.rows, sites.cols] = clean[
            sites.rows, sites.cols
        ]
        assert np.array_equal(
            c_batch, np.broadcast_to(clean, c_batch.shape), equal_nan=True
        )

    def test_sites_are_unique_and_counted(self):
        clean = np.zeros((4, 4), dtype=np.float32)
        trials = [
            (
                FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=1.0),
                FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=2.0),
                FaultSpec(row=2, col=0, kind=FaultKind.SET, value=5.0,
                          path=FaultPath.CHECKSUM),
            ),
            (),
        ]
        sites = faulted_site_values(clean, trials)
        assert sites.n_trials == 2
        # One unique site: the checksum-path fault never touches the
        # output, and the repeated element collapses to one entry.
        assert len(sites) == 1
        assert (sites.trials[0], sites.rows[0], sites.cols[0]) == (0, 1, 1)
        assert sites.values[0] == np.float32(3.0)
