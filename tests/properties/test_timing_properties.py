"""Property-based tests for the latency model and selection invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONSTANTS
from repro.core import IntensityGuidedABFT
from repro.gemm import GemmProblem
from repro.gpu import T4, time_kernel
from repro.gpu.timing import KernelWork


def _work(tc, alu, mem, issue, blocks):
    return KernelWork(
        matmul_flops=tc, alu_ops=alu, dram_bytes=mem, issue_slots=issue,
        blocks=blocks, threads_per_block=128, registers_per_thread=64,
    )


work_floats = st.floats(min_value=1.0, max_value=1e12, allow_nan=False)
blocks_ints = st.integers(min_value=1, max_value=10000)


class TestTimingMonotonicity:
    @given(tc=work_floats, alu=work_floats, mem=work_floats,
           issue=work_floats, blocks=blocks_ints, factor=st.floats(1.0, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_more_tensor_work_never_faster(self, tc, alu, mem, issue, blocks, factor):
        base = time_kernel(T4, _work(tc, alu, mem, issue, blocks)).total_s
        more = time_kernel(T4, _work(tc * factor, alu, mem, issue, blocks)).total_s
        assert more >= base - 1e-15

    @given(tc=work_floats, alu=work_floats, mem=work_floats,
           issue=work_floats, blocks=blocks_ints)
    @settings(max_examples=60, deadline=None)
    def test_time_at_least_launch_plus_roofline(self, tc, alu, mem, issue, blocks):
        timing = time_kernel(T4, _work(tc, alu, mem, issue, blocks))
        assert timing.total_s >= timing.launch_s
        assert timing.total_s >= timing.pipe_times.bound

    @given(tc=work_floats, alu=work_floats, mem=work_floats,
           issue=work_floats, blocks=blocks_ints)
    @settings(max_examples=60, deadline=None)
    def test_critical_pipe_is_max(self, tc, alu, mem, issue, blocks):
        timing = time_kernel(T4, _work(tc, alu, mem, issue, blocks))
        times = timing.pipe_times
        assert times.bound == max(times.tensor, times.alu, times.memory, times.issue)


class TestSelectionInvariants:
    @given(m=st.integers(1, 3000), n=st.integers(1, 3000), k=st.integers(1, 3000))
    @settings(max_examples=25, deadline=None)
    def test_guided_is_argmin_of_candidates(self, m, n, k):
        guided = IntensityGuidedABFT(T4)
        sel = guided.select_for_problem(GemmProblem(m, n, k))
        assert sel.chosen_time_s == min(sel.scheme_times_s.values())
        assert sel.baseline_s <= sel.chosen_time_s + 1e-15

    @given(m=st.integers(8, 2048))
    @settings(max_examples=20, deadline=None)
    def test_square_selection_follows_roofline_broadly(self, m):
        """Far from the CMR boundary the profiler must agree with the
        AI-vs-CMR rule (near the boundary either answer is legitimate)."""
        problem = GemmProblem(m, m, m)
        ai = problem.arithmetic_intensity()
        guided = IntensityGuidedABFT(T4)
        chosen = guided.select_for_problem(problem).chosen
        if ai < T4.cmr / 2:
            assert chosen == "thread_onesided"
        elif ai > T4.cmr * 2:
            assert chosen == "global"


class TestConstantsRobustness:
    @given(
        launch=st.floats(1e-6, 6e-6),
        overlap=st.floats(0.0, 0.9),
        traffic=st.floats(0.1, 0.8),
    )
    @settings(max_examples=15, deadline=None)
    def test_guided_never_loses_under_perturbed_constants(
        self, launch, overlap, traffic
    ):
        """The by-design guarantee must hold for any reasonable
        calibration, not just the shipped one."""
        constants = DEFAULT_CONSTANTS.with_overrides(
            launch_overhead_s=launch,
            check_kernel_overlap=overlap,
            global_epilogue_c_traffic=traffic,
        )
        guided = IntensityGuidedABFT(T4, constants=constants)
        for size in (64, 512, 2048):
            sel = guided.select_for_problem(GemmProblem(size, size, size))
            assert sel.chosen_time_s <= min(sel.scheme_times_s.values()) + 1e-15
