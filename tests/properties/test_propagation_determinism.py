"""Property: propagation campaigns are a pure function of their seed.

A :class:`PropagationCampaign` built from a deterministic session
(seeded runnable weights, seeded input, seeded fault draws) must emit
an identical record stream on every run — same fault sets, same
verdicts, same divergences, same recovery accounting.  This is what
makes ``repro sdc`` runs and the `sdc_propagation` experiment
reproducible end to end (DESIGN.md §3).
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import deploy
from repro.faults import RecoveryPolicy
from repro.nn import build_model, build_runnable, runnable_input_shape

MODEL = "mlp_bottom"

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)
layers = st.sampled_from(["fc0", "fc1", "fc2"])
fault_counts = st.integers(min_value=1, max_value=3)


def run_campaign(layer, seed, faults_per_trial, recover):
    session = deploy(
        build_model(MODEL, batch=1),
        "T4",
        runnable=build_runnable(MODEL, batch=1, seed=0),
    )
    x = (
        np.random.default_rng(5)
        .standard_normal(runnable_input_shape(MODEL, batch=1))
        * 0.5
    ).astype(np.float16)
    recovery = RecoveryPolicy() if recover else None
    campaign = session.propagation_campaign(
        layer, x=x, seed=seed, recovery=recovery
    )
    return campaign.run_batch(12, faults_per_trial=faults_per_trial)


def assert_streams_identical(lhs, rhs):
    assert (lhs.model, lhs.layer, lhs.scheme) == (rhs.model, rhs.layer, rhs.scheme)
    assert len(lhs.records) == len(rhs.records)
    for r1, r2 in zip(lhs.records, rhs.records):
        assert r1.faults == r2.faults
        assert r1.detected == r2.detected
        assert r1.output_corrupted == r2.output_corrupted
        assert r1.top1_flip == r2.top1_flip
        assert r1.outcome is r2.outcome
        assert (r1.retries, r1.recovered, r1.degraded, r1.residual_sdc) == (
            r2.retries, r2.recovered, r2.degraded, r2.residual_sdc
        )
        if math.isnan(r1.divergence) or math.isnan(r2.divergence):
            assert math.isnan(r1.divergence) and math.isnan(r2.divergence)
        else:
            assert r1.divergence == r2.divergence


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(layer=layers, seed=seeds, faults_per_trial=fault_counts)
def test_fixed_seed_reproduces_the_record_stream(layer, seed, faults_per_trial):
    first = run_campaign(layer, seed, faults_per_trial, recover=False)
    second = run_campaign(layer, seed, faults_per_trial, recover=False)
    assert_streams_identical(first, second)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=seeds)
def test_recovery_accounting_is_deterministic_too(seed):
    first = run_campaign("fc0", seed, 1, recover=True)
    second = run_campaign("fc0", seed, 1, recover=True)
    assert_streams_identical(first, second)
    # Transient recovery clears every detection deterministically.
    assert first.n_recovered == first.n_detected
    assert first.n_degraded == 0


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=seeds, faults_per_trial=fault_counts)
def test_different_seeds_draw_different_fault_sets(seed, faults_per_trial):
    """Sanity direction: the seed actually steers the draw (two runs a
    seed apart agree only by coincidence on every trial's sites)."""
    lhs = run_campaign("fc0", seed, faults_per_trial, recover=False)
    rhs = run_campaign("fc0", seed + 1, faults_per_trial, recover=False)
    assert [r.faults for r in lhs.records] != [r.faults for r in rhs.records]
