"""Tests for the kernel latency model."""

import pytest

from repro.config import DEFAULT_CONSTANTS
from repro.errors import ConfigurationError, OccupancyError
from repro.gpu import T4, time_kernel
from repro.gpu.timing import KernelWork


def _work(**overrides):
    base = dict(
        matmul_flops=1e9,
        alu_ops=1e8,
        dram_bytes=1e6,
        issue_slots=1e6,
        blocks=40,
        threads_per_block=128,
        registers_per_thread=64,
        launches=1,
    )
    base.update(overrides)
    return KernelWork(**base)


class TestRooflineBehaviour:
    def test_compute_bound_kernel_is_tensor_critical(self):
        t = time_kernel(T4, _work(matmul_flops=1e12, dram_bytes=1e3))
        assert t.critical_pipe == "tensor"

    def test_bandwidth_bound_kernel_is_memory_critical(self):
        t = time_kernel(T4, _work(matmul_flops=1e6, dram_bytes=1e9))
        assert t.critical_pipe == "memory"

    def test_time_includes_launch_overhead(self):
        t = time_kernel(T4, _work())
        assert t.total_s >= t.launch_s
        assert t.launch_s == pytest.approx(DEFAULT_CONSTANTS.launch_overhead_s)

    def test_multiple_launches_scale_overhead(self):
        one = time_kernel(T4, _work(launches=1))
        two = time_kernel(T4, _work(launches=2))
        assert two.launch_s == pytest.approx(2 * one.launch_s)

    def test_tiny_kernel_is_launch_dominated(self):
        # The DLRM batch-1 regime: microseconds of work behind a 3us launch.
        t = time_kernel(T4, _work(matmul_flops=1e5, alu_ops=1e4,
                                  dram_bytes=1e4, issue_slots=1e3, blocks=1))
        assert t.launch_s / t.total_s > 0.5


class TestUtilization:
    def test_partial_wave_penalizes_throughput(self):
        few_blocks = time_kernel(T4, _work(blocks=4))
        many_blocks = time_kernel(T4, _work(blocks=40))
        assert few_blocks.utilization == pytest.approx(0.1)
        assert many_blocks.utilization == pytest.approx(1.0)
        assert few_blocks.total_s > many_blocks.total_s

    def test_wave_quantization_kicks_in_above_one_wave(self):
        # 40 SMs and >= 2 blocks/SM resident: 700 blocks of this kernel
        # leave a tail wave.
        t = time_kernel(T4, _work(blocks=700))
        assert t.wave_quantization > 1.0

    def test_single_wave_not_quantized(self):
        t = time_kernel(T4, _work(blocks=40))
        assert t.wave_quantization == 1.0


class TestOccupancyCoupling:
    def test_low_occupancy_derates_memory(self):
        # Same memory-bound work, but a huge shared-memory footprint
        # leaves one resident block (4 warps, occupancy 0.125 < knee
        # 0.25), stretching memory-bound time.
        lean = time_kernel(T4, _work(dram_bytes=1e9))
        fat = time_kernel(T4, _work(dram_bytes=1e9, smem_per_block=40 * 1024))
        assert fat.occupancy.occupancy < lean.occupancy.occupancy
        assert fat.occupancy.occupancy < DEFAULT_CONSTANTS.mem_latency_occupancy_knee
        assert fat.total_s > lean.total_s

    def test_unschedulable_kernel_raises(self):
        with pytest.raises(OccupancyError):
            time_kernel(T4, _work(registers_per_thread=1000))


class TestValidation:
    def test_rejects_negative_work(self):
        with pytest.raises(ConfigurationError):
            KernelWork(
                matmul_flops=-1.0, alu_ops=0, dram_bytes=0, issue_slots=0,
                blocks=1, threads_per_block=32, registers_per_thread=32,
            )

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            KernelWork(
                matmul_flops=0, alu_ops=0, dram_bytes=0, issue_slots=0,
                blocks=0, threads_per_block=32, registers_per_thread=32,
            )
