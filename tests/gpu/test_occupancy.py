"""Tests for the occupancy calculator (drives the paper's §4 result)."""

import pytest

from repro.errors import OccupancyError
from repro.gpu import T4, compute_occupancy


class TestBasicLimits:
    def test_small_kernel_hits_block_limit(self):
        # 32 threads, few registers: the per-SM block slots bound first.
        res = compute_occupancy(T4, threads_per_block=32, registers_per_thread=16)
        assert res.limiter == "blocks"
        assert res.blocks_per_sm == T4.max_blocks_per_sm

    def test_register_limited_kernel(self):
        # 256 threads x 128 regs = 32768 regs/block; 65536/32768 = 2 blocks.
        res = compute_occupancy(T4, threads_per_block=256, registers_per_thread=128)
        assert res.limiter == "registers"
        assert res.blocks_per_sm == 2

    def test_thread_limited_kernel(self):
        res = compute_occupancy(T4, threads_per_block=512, registers_per_thread=32)
        assert res.blocks_per_sm == 2  # 1024 threads/SM on Turing
        assert res.limiter == "threads"

    def test_smem_limited_kernel(self):
        res = compute_occupancy(
            T4, threads_per_block=64, registers_per_thread=32,
            smem_per_block=30 * 1024,
        )
        assert res.limiter == "smem"
        assert res.blocks_per_sm == 2

    def test_occupancy_fraction_bounds(self):
        res = compute_occupancy(T4, threads_per_block=256, registers_per_thread=64)
        assert 0.0 < res.occupancy <= 1.0


class TestReplicationRegisterEffect:
    """Doubling accumulator registers must reduce resident blocks —
    the mechanism behind traditional replication's slowdown (paper §4)."""

    def test_doubled_registers_halve_blocks(self):
        base = compute_occupancy(T4, threads_per_block=128, registers_per_thread=128)
        doubled = compute_occupancy(T4, threads_per_block=128, registers_per_thread=250)
        assert doubled.blocks_per_sm < base.blocks_per_sm
        assert doubled.occupancy < base.occupancy


class TestErrors:
    def test_rejects_non_warp_multiple(self):
        with pytest.raises(OccupancyError, match="warp size"):
            compute_occupancy(T4, threads_per_block=50, registers_per_thread=32)

    def test_rejects_over_register_cap(self):
        with pytest.raises(OccupancyError, match="registers/thread"):
            compute_occupancy(T4, threads_per_block=32, registers_per_thread=300)

    def test_rejects_block_larger_than_sm(self):
        with pytest.raises(OccupancyError):
            compute_occupancy(T4, threads_per_block=2048, registers_per_thread=32)

    def test_rejects_block_exceeding_register_file(self):
        with pytest.raises(OccupancyError, match="registers"):
            compute_occupancy(T4, threads_per_block=1024, registers_per_thread=128)

    def test_rejects_oversized_smem(self):
        with pytest.raises(OccupancyError, match="shared memory"):
            compute_occupancy(
                T4, threads_per_block=64, registers_per_thread=32,
                smem_per_block=128 * 1024,
            )

    def test_register_allocation_granularity(self):
        # Registers allocate in chunks of 8: 97 and 104 regs/thread give
        # the same occupancy; 96 gives strictly more blocks.
        at_97 = compute_occupancy(T4, threads_per_block=128, registers_per_thread=97)
        at_104 = compute_occupancy(T4, threads_per_block=128, registers_per_thread=104)
        at_96 = compute_occupancy(T4, threads_per_block=128, registers_per_thread=96)
        assert at_97.blocks_per_sm == at_104.blocks_per_sm == 4
        assert at_96.blocks_per_sm == 5
        assert at_97.limiter == "registers"
