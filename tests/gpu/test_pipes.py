"""Tests for the execution-pipe model."""

import pytest

from repro.config import DEFAULT_CONSTANTS
from repro.errors import ConfigurationError
from repro.gpu import T4, Pipe, PipeTimes
from repro.gpu.timing import build_pipes


class TestPipe:
    def test_time_is_work_over_throughput(self):
        pipe = Pipe("x", 100.0)
        assert pipe.time_for(50.0) == pytest.approx(0.5)

    def test_zero_work_is_free(self):
        assert Pipe("x", 10.0).time_for(0.0) == 0.0

    def test_rejects_negative_work(self):
        with pytest.raises(ConfigurationError):
            Pipe("x", 10.0).time_for(-1.0)

    def test_rejects_non_positive_throughput(self):
        with pytest.raises(ConfigurationError):
            Pipe("x", 0.0)


class TestPipeTimes:
    def test_critical_names_longest_pipe(self):
        times = PipeTimes(tensor=1.0, alu=2.0, memory=3.0, issue=0.5)
        assert times.critical == "memory"
        assert times.bound == 3.0

    def test_scaled(self):
        times = PipeTimes(tensor=1.0, alu=2.0, memory=3.0, issue=0.5)
        doubled = times.scaled(2.0)
        assert doubled.memory == 6.0 and doubled.tensor == 2.0


class TestBuildPipes:
    def test_efficiencies_applied(self):
        pipes = build_pipes(T4, DEFAULT_CONSTANTS)
        assert pipes.tensor.throughput == pytest.approx(
            T4.matmul_flops * DEFAULT_CONSTANTS.tensor_core_efficiency
        )
        assert pipes.memory.throughput == pytest.approx(
            T4.mem_bandwidth * DEFAULT_CONSTANTS.memory_efficiency
        )

    def test_iteration_order(self):
        pipes = build_pipes(T4)
        assert [p.name for p in pipes] == ["tensor", "alu", "memory", "issue"]
