"""Tests for device specs, pinning the paper's §3.3 numbers."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import A100, JETSON_AGX_XAVIER, P4, T4, V100, GPUSpec, get_gpu, list_gpus


class TestPaperCMRs:
    """The paper quotes exact CMRs in §3.3; the specs must reproduce them."""

    def test_t4_cmr_is_203(self):
        assert T4.cmr == pytest.approx(203, abs=0.5)

    def test_p4_cmr_is_58(self):
        assert P4.cmr == pytest.approx(58, abs=1.0)

    def test_v100_cmr_is_139(self):
        assert V100.cmr == pytest.approx(139, abs=0.5)

    def test_a100_cmr_is_201(self):
        assert A100.cmr == pytest.approx(201, abs=0.7)

    def test_jetson_cmr_is_235(self):
        assert JETSON_AGX_XAVIER.cmr == pytest.approx(235, abs=1.5)


class TestPaperThroughputs:
    def test_t4_fp16_tflops(self):
        assert T4.matmul_flops == pytest.approx(65e12)

    def test_t4_bandwidth(self):
        assert T4.mem_bandwidth == pytest.approx(320e9)

    def test_t4_vs_p4_flops_growth(self):
        # §3.3: T4 increases FP16 FLOPs/s by 5.9x over P4.
        assert T4.matmul_flops / P4.matmul_flops == pytest.approx(5.9, rel=0.02)

    def test_t4_vs_p4_bandwidth_growth(self):
        # §3.3: only 1.7x growth in memory bandwidth.
        assert T4.mem_bandwidth / P4.mem_bandwidth == pytest.approx(1.7, rel=0.03)

    def test_p4_has_no_tensor_cores(self):
        assert not P4.has_tensor_cores
        assert T4.has_tensor_cores


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert get_gpu("t4") is T4
        assert get_gpu("T4") is T4

    def test_all_devices_registered(self):
        assert set(list_gpus()) == {"T4", "P4", "V100", "A100", "Jetson-AGX-Xavier"}

    def test_unknown_device_raises(self):
        with pytest.raises(ConfigurationError, match="unknown GPU"):
            get_gpu("H100")


class TestSpecValidation:
    def test_rejects_non_positive_throughput(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(
                name="bad",
                matmul_flops=0.0,
                alu_flops=1.0,
                mem_bandwidth=1.0,
                num_sms=1,
                clock_hz=1e9,
            )

    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(
                name="bad",
                matmul_flops=1.0,
                alu_flops=1.0,
                mem_bandwidth=1.0,
                num_sms=0,
                clock_hz=1e9,
            )

    def test_issue_slots_scale_with_sms_and_clock(self):
        assert T4.issue_slots_per_s == pytest.approx(
            T4.num_sms * T4.schedulers_per_sm * T4.clock_hz
        )
