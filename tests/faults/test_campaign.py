"""Tests for fault-injection campaigns."""

import numpy as np
import pytest

from repro.abft import get_scheme
from repro.errors import FaultInjectionError
from repro.faults import FaultCampaign, FaultKind, FaultSpec


@pytest.fixture
def operands(rng):
    a = (rng.standard_normal((48, 32)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((32, 40)) * 0.5).astype(np.float16)
    return a, b


class TestCampaign:
    def test_rejects_unprotected_scheme(self, operands):
        a, b = operands
        with pytest.raises(FaultInjectionError):
            FaultCampaign(get_scheme("none"), a, b)

    @pytest.mark.parametrize(
        "scheme", ["global", "thread_onesided", "thread_twosided",
                   "replication_single", "replication_traditional"]
    )
    def test_full_coverage_of_significant_faults(self, scheme, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme(scheme), a, b, seed=7)
        result = campaign.run(50)
        assert result.n_trials == 50
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_deterministic_given_seed(self, operands):
        a, b = operands
        r1 = FaultCampaign(get_scheme("global"), a, b, seed=11).run(20)
        r2 = FaultCampaign(get_scheme("global"), a, b, seed=11).run(20)
        assert [t.spec for t in r1.trials] == [t.spec for t in r2.trials]
        assert [t.detected for t in r1.trials] == [t.detected for t in r2.trials]

    def test_explicit_specs_run_exactly(self, operands):
        a, b = operands
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
        ]
        result = FaultCampaign(get_scheme("global"), a, b).run(0, specs=specs)
        assert result.n_trials == 2
        assert all(t.detected for t in result.trials)

    def test_n_trials_matching_specs_accepted(self, operands):
        a, b = operands
        specs = [FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0)]
        result = FaultCampaign(get_scheme("global"), a, b).run(1, specs=specs)
        assert result.n_trials == 1

    def test_n_trials_disagreeing_with_specs_rejected(self, operands):
        """run() must not silently ignore n_trials when specs is given."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
        ]
        with pytest.raises(FaultInjectionError):
            campaign.run(5, specs=specs)
        with pytest.raises(FaultInjectionError):
            campaign.run(-1)

    def test_run_batch_matches_run_semantics(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=13)
        result = campaign.run_batch(30)
        assert result.n_trials == 30
        assert result.coverage == 1.0
        # Deterministic given the seed.
        again = FaultCampaign(get_scheme("global"), a, b, seed=13).run_batch(30)
        assert [t.spec for t in result.trials] == [t.spec for t in again.trials]
        assert [t.detected for t in result.trials] == [
            t.detected for t in again.trials
        ]

    @pytest.mark.parametrize(
        "scheme", ["global", "thread_onesided", "thread_twosided",
                   "replication_single", "replication_traditional"]
    )
    def test_run_batch_full_coverage(self, scheme, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme(scheme), a, b, seed=7)
        result = campaign.run_batch(50)
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_significance_classification(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_onesided"), a, b)
        big = campaign.run_trial(FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0))
        tiny = campaign.run_trial(FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=1e-7))
        assert big.significant and big.detected
        assert not tiny.significant

    def test_thread_level_more_sensitive_than_global(self, operands):
        """The numerical sensitivity hierarchy: per-tile checks resolve
        smaller corruptions than the whole-output scalar check."""
        a, b = operands
        thread = FaultCampaign(get_scheme("thread_onesided"), a, b)
        global_ = FaultCampaign(get_scheme("global"), a, b)
        assert thread._tolerance_scale < global_._tolerance_scale

    def test_coverage_is_one_when_no_significant_faults(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        result = campaign.run(0, specs=[
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=1e-9)
        ])
        assert result.n_significant == 0
        assert result.coverage == 1.0
