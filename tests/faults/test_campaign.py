"""Tests for fault-injection campaigns."""

import numpy as np
import pytest

from repro.abft import MultiChecksumGlobalABFT, get_scheme
from repro.errors import FaultInjectionError
from repro.faults import FaultCampaign, FaultKind, FaultPath, FaultSpec


@pytest.fixture
def operands(rng):
    a = (rng.standard_normal((48, 32)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((32, 40)) * 0.5).astype(np.float16)
    return a, b


class TestCampaign:
    def test_rejects_unprotected_scheme(self, operands):
        a, b = operands
        with pytest.raises(FaultInjectionError):
            FaultCampaign(get_scheme("none"), a, b)

    @pytest.mark.parametrize(
        "scheme", ["global", "thread_onesided", "thread_twosided",
                   "replication_single", "replication_traditional"]
    )
    def test_full_coverage_of_significant_faults(self, scheme, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme(scheme), a, b, seed=7)
        result = campaign.run(50)
        assert result.n_trials == 50
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_deterministic_given_seed(self, operands):
        a, b = operands
        r1 = FaultCampaign(get_scheme("global"), a, b, seed=11).run(20)
        r2 = FaultCampaign(get_scheme("global"), a, b, seed=11).run(20)
        assert [t.spec for t in r1.trials] == [t.spec for t in r2.trials]
        assert [t.detected for t in r1.trials] == [t.detected for t in r2.trials]

    def test_explicit_specs_run_exactly(self, operands):
        a, b = operands
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
        ]
        result = FaultCampaign(get_scheme("global"), a, b).run(0, specs=specs)
        assert result.n_trials == 2
        assert all(t.detected for t in result.trials)

    def test_n_trials_matching_specs_accepted(self, operands):
        a, b = operands
        specs = [FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0)]
        result = FaultCampaign(get_scheme("global"), a, b).run(1, specs=specs)
        assert result.n_trials == 1

    def test_n_trials_disagreeing_with_specs_rejected(self, operands):
        """run() must not silently ignore n_trials when specs is given."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
        ]
        with pytest.raises(FaultInjectionError):
            campaign.run(5, specs=specs)
        with pytest.raises(FaultInjectionError):
            campaign.run(-1)

    def test_run_batch_matches_run_semantics(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=13)
        result = campaign.run_batch(30)
        assert result.n_trials == 30
        assert result.coverage == 1.0
        # Deterministic given the seed.
        again = FaultCampaign(get_scheme("global"), a, b, seed=13).run_batch(30)
        assert [t.spec for t in result.trials] == [t.spec for t in again.trials]
        assert [t.detected for t in result.trials] == [
            t.detected for t in again.trials
        ]

    @pytest.mark.parametrize(
        "scheme", ["global", "thread_onesided", "thread_twosided",
                   "replication_single", "replication_traditional"]
    )
    def test_run_batch_full_coverage(self, scheme, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme(scheme), a, b, seed=7)
        result = campaign.run_batch(50)
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_random_fault_and_draw_faults_share_site_domain(self, operands):
        """Both random-spec generators must draw fault sites from the
        same source — the prepared clean accumulator's padded grid."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=3)
        assert campaign.fault_domain == campaign._prepared.c_clean.shape
        rows, cols = campaign.fault_domain
        singles = [campaign.random_fault() for _ in range(300)]
        drawn = campaign.draw_faults(300)
        for spec in singles + drawn:
            assert 0 <= spec.row < rows and 0 <= spec.col < cols
        # Both generators reach the full padded grid, not just the
        # logical corner (the padded rows/cols are legal fault sites).
        for specs in (singles, drawn):
            assert max(s.row for s in specs) >= rows - 8
            assert max(s.col for s in specs) >= cols - 8

    def test_run_matches_per_trial_records(self, operands):
        """The chunked batched path must reproduce run_trial records."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_onesided"), a, b, seed=21,
                                 batch_size=7)
        specs = campaign.draw_faults(23)
        batched = campaign.run(0, specs=specs).trials
        for spec, record in zip(specs, batched):
            single = campaign.run_trial(spec)
            assert single.spec == record.spec
            assert single.detected == record.detected
            assert single.significant == record.significant
            assert (single.delta == record.delta) or (
                np.isnan(single.delta) and np.isnan(record.delta)
            )

    def test_scratch_reuse_does_not_corrupt_records(self, operands):
        """Chunks share one scratch buffer; records must be extracted
        before the next chunk overwrites it."""
        a, b = operands
        one_chunk = FaultCampaign(get_scheme("global"), a, b, seed=5,
                                  batch_size=1000).run_batch(40)
        many_chunks = FaultCampaign(get_scheme("global"), a, b, seed=5,
                                    batch_size=3).run_batch(40)
        assert [t.spec for t in one_chunk.trials] == [
            t.spec for t in many_chunks.trials
        ]
        assert [t.detected for t in one_chunk.trials] == [
            t.detected for t in many_chunks.trials
        ]

    def test_significance_classification(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_onesided"), a, b)
        big = campaign.run_trial(FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0))
        tiny = campaign.run_trial(FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=1e-7))
        assert big.significant and big.detected
        assert not tiny.significant

    def test_thread_level_more_sensitive_than_global(self, operands):
        """The numerical sensitivity hierarchy: per-tile checks resolve
        smaller corruptions than the whole-output scalar check."""
        a, b = operands
        thread = FaultCampaign(get_scheme("thread_onesided"), a, b)
        global_ = FaultCampaign(get_scheme("global"), a, b)
        assert thread._tolerance_scale < global_._tolerance_scale

    def test_coverage_is_one_when_no_significant_faults(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        result = campaign.run(0, specs=[
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=1e-9)
        ])
        assert result.n_significant == 0
        assert result.coverage == 1.0

    def test_tolerance_scale_is_public(self, operands):
        """The sensitivity floor is part of the campaign's public API."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        assert campaign.tolerance_scale > 0.0
        assert campaign.tolerance_scale == campaign._tolerance_scale


class TestBenignAlarms:
    """Checksum-path faults are benign false alarms, never significant."""

    def test_checksum_path_trial_not_counted_significant(self, operands):
        """The §2.3 fault model: a checksum-path fault corrupts the
        redundant computation, not the output — it must land in the
        benign-alarm tally, not the coverage denominator."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        spec = FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0,
                         path=FaultPath.CHECKSUM)
        record = campaign.run_trial(spec)
        assert record.detected
        assert not record.significant
        assert record.benign_alarm
        assert np.isnan(record.delta)

        result = campaign.run(0, specs=[spec])
        assert result.n_significant == 0
        assert result.n_benign_alarms == 1
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_record_and_records_batch_agree_on_checksum_faults(self, operands):
        """Batched and per-trial classification must stay record-for-
        record identical on the path that used to misclassify."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_twosided"), a, b)
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=50.0,
                      path=FaultPath.CHECKSUM),
            FaultSpec(row=3, col=3, kind=FaultKind.ADD, value=50.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=1e-8,
                      path=FaultPath.CHECKSUM),
        ]
        batched = campaign.run(0, specs=specs).trials
        for spec, record in zip(specs, batched):
            single = campaign.run_trial(spec)
            assert single.faults == record.faults
            assert single.detected == record.detected
            assert single.significant == record.significant
            assert single.benign_alarm == record.benign_alarm
            assert (single.delta == record.delta) or (
                np.isnan(single.delta) and np.isnan(record.delta)
            )

    def test_undetected_subthreshold_original_fault_is_not_benign_alarm(
        self, operands
    ):
        """The flag is reserved for checksum-path alarms: original-path
        trials never carry it, detected or not."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_onesided"), a, b)
        record = campaign.run_trial(
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=0.5)
        )
        assert not record.benign_alarm

    def test_mixed_trial_with_significant_fault_stays_significant(
        self, operands
    ):
        """A checksum-path fault riding along a significant original
        fault must not demote the trial to a benign alarm."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        record = campaign.run_trial((
            FaultSpec(row=2, col=2, kind=FaultKind.ADD, value=200.0),
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=50.0,
                      path=FaultPath.CHECKSUM),
        ))
        assert record.significant
        assert not record.benign_alarm
        assert record.delta == pytest.approx(200.0, rel=1e-3)

    def test_mixed_detected_insignificant_trial_is_not_benign_alarm(
        self, operands
    ):
        """With both paths struck the alarm's cause is ambiguous — the
        flag is reserved for checksum-path-only trials, where no output
        corruption exists that could explain the detection."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_onesided"), a, b)
        # An original-path delta of 3x the tolerance scale is always in
        # the detectable-but-insignificant window: the struck check's
        # residual moves by the delta (>= 2x its tolerance even against
        # a worst-case clean residual), while significance demands 4x.
        # The checksum fault alone would also alarm, so attribution is
        # ambiguous and neither may claim the flag.
        record = campaign.run_trial((
            FaultSpec(row=0, col=0, kind=FaultKind.ADD,
                      value=3.0 * campaign.tolerance_scale),
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=50.0,
                      path=FaultPath.CHECKSUM),
        ))
        assert record.detected
        assert not record.significant
        assert not record.benign_alarm


class TestMultiFaultTrials:
    """Per-trial fault sets: the §2.4 multi-fault campaign mode."""

    def test_run_batch_with_faults_per_trial(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=19)
        result = campaign.run_batch(30, faults_per_trial=3)
        assert result.n_trials == 30
        assert all(t.n_faults == 3 for t in result.trials)
        # A single global check guarantees nothing beyond one fault —
        # partial cancellation across a trial's sites is expected (the
        # very gap §2.4's r-checksum extension closes), so coverage may
        # legitimately dip below 1.0 here.
        assert 0.0 < result.coverage <= 1.0
        # Deterministic given the seed.
        again = FaultCampaign(get_scheme("global"), a, b, seed=19).run_batch(
            30, faults_per_trial=3
        )
        assert [t.faults for t in result.trials] == [
            t.faults for t in again.trials
        ]

    def test_draw_faults_grouping(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=2)
        singles = campaign.draw_faults(10)
        assert all(isinstance(s, FaultSpec) for s in singles)
        trials = FaultCampaign(get_scheme("global"), a, b, seed=2).draw_faults(
            10, faults_per_trial=4
        )
        assert len(trials) == 10
        assert all(isinstance(t, tuple) and len(t) == 4 for t in trials)
        # Same RNG stream: the grouped draw is the flat draw, chunked.
        flat = FaultCampaign(get_scheme("global"), a, b, seed=2).draw_faults(40)
        assert [spec for trial in trials for spec in trial] == flat

    @pytest.mark.parametrize(
        "scheme", ["global", "thread_onesided", "thread_twosided",
                   "replication_single"]
    )
    def test_multi_fault_records_match_per_trial_classification(
        self, scheme, operands
    ):
        """The chunked batched path must reproduce run_trial records on
        arbitrary fault sets (both execution paths, small chunks)."""
        a, b = operands
        campaign = FaultCampaign(get_scheme(scheme), a, b, seed=23,
                                 batch_size=5)
        trials = campaign.draw_faults(17, faults_per_trial=3)
        batched = campaign.run(0, specs=trials).trials
        for faults, record in zip(trials, batched):
            single = campaign.run_trial(faults)
            assert single.faults == record.faults
            assert single.detected == record.detected
            assert single.significant == record.significant
            assert single.benign_alarm == record.benign_alarm
            assert (single.delta == record.delta) or (
                np.isnan(single.delta) and np.isnan(record.delta)
            )

    def test_multi_checksum_scheme_covers_fault_sets_within_r(self, operands):
        """global_multi with r checksums must detect every significant
        trial of up to r simultaneous faults (paper §2.4)."""
        a, b = operands
        campaign = FaultCampaign(MultiChecksumGlobalABFT(4), a, b, seed=31)
        for faults_per_trial in (1, 2, 4):
            result = campaign.run_batch(40, faults_per_trial=faults_per_trial)
            assert result.coverage == 1.0, (
                f"missed significant trials at {faults_per_trial} faults"
            )

    def test_by_fault_count_grouping(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=5)
        mixed = campaign.draw_faults(8) + campaign.draw_faults(
            6, faults_per_trial=2
        )
        result = campaign.run(0, specs=mixed)
        groups = result.by_fault_count()
        assert list(groups) == [1, 2]
        assert groups[1].n_trials == 8 and groups[2].n_trials == 6
        assert sum(g.n_trials for g in groups.values()) == result.n_trials
        assert result.coverage_by_fault_count() == {
            k: g.coverage for k, g in groups.items()
        }

    def test_delta_is_largest_magnitude_site_delta(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        record = campaign.run_trial((
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=30.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=-90.0),
        ))
        assert record.delta == pytest.approx(-90.0, rel=1e-3)
        assert record.significant

    def test_spec_accessor_requires_single_fault(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        single = campaign.run_trial(
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0)
        )
        assert single.spec == single.faults[0]
        multi = campaign.run_trial((
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
        ))
        with pytest.raises(FaultInjectionError):
            multi.spec

    def test_argument_validation(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        with pytest.raises(FaultInjectionError):
            campaign.draw_faults(5, faults_per_trial=0)
        with pytest.raises(FaultInjectionError):
            campaign.run(5, faults_per_trial=0)
        with pytest.raises(FaultInjectionError):
            campaign.run(
                0,
                specs=[FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=1.0)],
                faults_per_trial=2,
            )

    def test_explicit_specs_accept_mixed_shapes(self, operands):
        """run() normalizes bare specs and fault-set sequences alike."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        bare = FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0)
        pair = (
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=2, col=2, kind=FaultKind.ADD, value=100.0),
        )
        result = campaign.run(0, specs=[bare, pair, [bare]])
        assert [t.faults for t in result.trials] == [
            (bare,), pair, (bare,)
        ]
        assert all(t.detected for t in result.trials)
