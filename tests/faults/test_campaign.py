"""Tests for fault-injection campaigns."""

import numpy as np
import pytest

from repro.abft import get_scheme
from repro.errors import FaultInjectionError
from repro.faults import FaultCampaign, FaultKind, FaultSpec


@pytest.fixture
def operands(rng):
    a = (rng.standard_normal((48, 32)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((32, 40)) * 0.5).astype(np.float16)
    return a, b


class TestCampaign:
    def test_rejects_unprotected_scheme(self, operands):
        a, b = operands
        with pytest.raises(FaultInjectionError):
            FaultCampaign(get_scheme("none"), a, b)

    @pytest.mark.parametrize(
        "scheme", ["global", "thread_onesided", "thread_twosided",
                   "replication_single", "replication_traditional"]
    )
    def test_full_coverage_of_significant_faults(self, scheme, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme(scheme), a, b, seed=7)
        result = campaign.run(50)
        assert result.n_trials == 50
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_deterministic_given_seed(self, operands):
        a, b = operands
        r1 = FaultCampaign(get_scheme("global"), a, b, seed=11).run(20)
        r2 = FaultCampaign(get_scheme("global"), a, b, seed=11).run(20)
        assert [t.spec for t in r1.trials] == [t.spec for t in r2.trials]
        assert [t.detected for t in r1.trials] == [t.detected for t in r2.trials]

    def test_explicit_specs_run_exactly(self, operands):
        a, b = operands
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
        ]
        result = FaultCampaign(get_scheme("global"), a, b).run(0, specs=specs)
        assert result.n_trials == 2
        assert all(t.detected for t in result.trials)

    def test_n_trials_matching_specs_accepted(self, operands):
        a, b = operands
        specs = [FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0)]
        result = FaultCampaign(get_scheme("global"), a, b).run(1, specs=specs)
        assert result.n_trials == 1

    def test_n_trials_disagreeing_with_specs_rejected(self, operands):
        """run() must not silently ignore n_trials when specs is given."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=100.0),
        ]
        with pytest.raises(FaultInjectionError):
            campaign.run(5, specs=specs)
        with pytest.raises(FaultInjectionError):
            campaign.run(-1)

    def test_run_batch_matches_run_semantics(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=13)
        result = campaign.run_batch(30)
        assert result.n_trials == 30
        assert result.coverage == 1.0
        # Deterministic given the seed.
        again = FaultCampaign(get_scheme("global"), a, b, seed=13).run_batch(30)
        assert [t.spec for t in result.trials] == [t.spec for t in again.trials]
        assert [t.detected for t in result.trials] == [
            t.detected for t in again.trials
        ]

    @pytest.mark.parametrize(
        "scheme", ["global", "thread_onesided", "thread_twosided",
                   "replication_single", "replication_traditional"]
    )
    def test_run_batch_full_coverage(self, scheme, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme(scheme), a, b, seed=7)
        result = campaign.run_batch(50)
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_random_fault_and_draw_faults_share_site_domain(self, operands):
        """Both random-spec generators must draw fault sites from the
        same source — the prepared clean accumulator's padded grid."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b, seed=3)
        assert campaign.fault_domain == campaign._prepared.c_clean.shape
        rows, cols = campaign.fault_domain
        singles = [campaign.random_fault() for _ in range(300)]
        drawn = campaign.draw_faults(300)
        for spec in singles + drawn:
            assert 0 <= spec.row < rows and 0 <= spec.col < cols
        # Both generators reach the full padded grid, not just the
        # logical corner (the padded rows/cols are legal fault sites).
        for specs in (singles, drawn):
            assert max(s.row for s in specs) >= rows - 8
            assert max(s.col for s in specs) >= cols - 8

    def test_run_matches_per_trial_records(self, operands):
        """The chunked batched path must reproduce run_trial records."""
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_onesided"), a, b, seed=21,
                                 batch_size=7)
        specs = campaign.draw_faults(23)
        batched = campaign.run(0, specs=specs).trials
        for spec, record in zip(specs, batched):
            single = campaign.run_trial(spec)
            assert single.spec == record.spec
            assert single.detected == record.detected
            assert single.significant == record.significant
            assert (single.delta == record.delta) or (
                np.isnan(single.delta) and np.isnan(record.delta)
            )

    def test_scratch_reuse_does_not_corrupt_records(self, operands):
        """Chunks share one scratch buffer; records must be extracted
        before the next chunk overwrites it."""
        a, b = operands
        one_chunk = FaultCampaign(get_scheme("global"), a, b, seed=5,
                                  batch_size=1000).run_batch(40)
        many_chunks = FaultCampaign(get_scheme("global"), a, b, seed=5,
                                    batch_size=3).run_batch(40)
        assert [t.spec for t in one_chunk.trials] == [
            t.spec for t in many_chunks.trials
        ]
        assert [t.detected for t in one_chunk.trials] == [
            t.detected for t in many_chunks.trials
        ]

    def test_significance_classification(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("thread_onesided"), a, b)
        big = campaign.run_trial(FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0))
        tiny = campaign.run_trial(FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=1e-7))
        assert big.significant and big.detected
        assert not tiny.significant

    def test_thread_level_more_sensitive_than_global(self, operands):
        """The numerical sensitivity hierarchy: per-tile checks resolve
        smaller corruptions than the whole-output scalar check."""
        a, b = operands
        thread = FaultCampaign(get_scheme("thread_onesided"), a, b)
        global_ = FaultCampaign(get_scheme("global"), a, b)
        assert thread._tolerance_scale < global_._tolerance_scale

    def test_coverage_is_one_when_no_significant_faults(self, operands):
        a, b = operands
        campaign = FaultCampaign(get_scheme("global"), a, b)
        result = campaign.run(0, specs=[
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=1e-9)
        ])
        assert result.n_significant == 0
        assert result.coverage == 1.0
