"""``run_batch``'s fused draw→sites fast path equals the stepped path.

PR 6 fuses spec drawing with fault-site valuation: when a drawn batch's
``(trial, row, col)`` sites are all unique, ``run_batch`` derives the
:class:`~repro.faults.injector.FaultSites` for each chunk in one
``corrupted_values_batch`` call over the clean elements instead of
re-deriving them per chunk through :func:`faulted_site_values`.  The
records must be identical, record for record, to
``run(n, specs=draw_faults(n))`` — which itself pins the fused path
against the generic one, since explicit specs never take it.
"""

import math

import numpy as np
import pytest

from repro.abft import MultiChecksumGlobalABFT, get_scheme
from repro.errors import FaultInjectionError
from repro.faults import FaultCampaign
from repro.faults.injector import sites_from_flat_specs


def make_campaign(name, operands, **kwargs):
    scheme = (
        MultiChecksumGlobalABFT(2) if name == "global_multi" else get_scheme(name)
    )
    a, b = operands
    return FaultCampaign(scheme, a, b, **kwargs)


def assert_records_identical(lhs, rhs):
    """Field-wise trial equality; NaN deltas compare equal to NaN."""
    assert len(lhs.trials) == len(rhs.trials)
    for t1, t2 in zip(lhs.trials, rhs.trials):
        assert t1.faults == t2.faults
        assert t1.detected == t2.detected
        assert t1.significant == t2.significant
        assert t1.benign_alarm == t2.benign_alarm
        if math.isnan(t1.delta) or math.isnan(t2.delta):
            assert math.isnan(t1.delta) and math.isnan(t2.delta)
        else:
            assert t1.delta == t2.delta


@pytest.fixture
def operands(rng):
    a = (rng.standard_normal((48, 32)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((32, 40)) * 0.5).astype(np.float16)
    return a, b


class TestFusedDrawEquivalence:
    @pytest.mark.parametrize(
        "scheme",
        [
            "global",
            "thread_onesided",
            "thread_twosided",
            "replication_single",
            "replication_traditional",
            "global_multi",
        ],
    )
    @pytest.mark.parametrize("faults_per_trial", [1, 3])
    def test_run_batch_equals_stepped_run(
        self, scheme, faults_per_trial, operands
    ):
        fused = make_campaign(scheme, operands, seed=23).run_batch(
            40, faults_per_trial=faults_per_trial
        )
        stepped_campaign = make_campaign(scheme, operands, seed=23)
        drawn = stepped_campaign.draw_faults(
            40, faults_per_trial=faults_per_trial
        )
        stepped = stepped_campaign.run(0, specs=drawn)
        assert_records_identical(fused, stepped)

    def test_dense_path_ignores_fused_sites(self, operands):
        fused = make_campaign(operands=operands, name="global", seed=5,
                              sparse=False).run_batch(24, faults_per_trial=2)
        stepped_campaign = make_campaign(operands=operands, name="global",
                                         seed=5, sparse=False)
        stepped = stepped_campaign.run(
            0, specs=stepped_campaign.draw_faults(24, faults_per_trial=2)
        )
        assert_records_identical(fused, stepped)

    def test_chunked_batches_stay_identical(self, operands):
        fused = make_campaign(operands=operands, name="global", seed=9,
                              batch_size=7).run_batch(30, faults_per_trial=2)
        stepped_campaign = make_campaign(operands=operands, name="global",
                                         seed=9, batch_size=7)
        stepped = stepped_campaign.run(
            0, specs=stepped_campaign.draw_faults(30, faults_per_trial=2)
        )
        assert_records_identical(fused, stepped)

    def test_duplicate_sites_fall_back_to_generic_path(self, rng):
        # A 2x4 fault domain with 4 faults per trial collides almost
        # surely; _fused_sites_fn must decline (duplicate sites need
        # the stepped application order) and run_batch must still match
        # the stepped reference exactly.  Seed 0 draws a colliding
        # batch for these operands.
        a = (rng.standard_normal((2, 8)) * 0.5).astype(np.float16)
        b = (rng.standard_normal((8, 4)) * 0.5).astype(np.float16)
        fused_campaign = FaultCampaign(get_scheme("global"), a, b, seed=0)
        assert fused_campaign._fused_sites_fn(
            [t if isinstance(t, tuple) else (t,)
             for t in fused_campaign.draw_faults(16, faults_per_trial=4)]
        ) is None
        fused = FaultCampaign(get_scheme("global"), a, b, seed=0).run_batch(
            16, faults_per_trial=4
        )
        stepped_campaign = FaultCampaign(get_scheme("global"), a, b, seed=0)
        stepped = stepped_campaign.run(
            0, specs=stepped_campaign.draw_faults(16, faults_per_trial=4)
        )
        assert_records_identical(fused, stepped)


class TestSitesFromFlatSpecs:
    def test_validates_array_lengths(self, operands):
        campaign = make_campaign("global", operands, seed=1)
        c_clean = campaign._prepared.c_clean
        specs = campaign.draw_faults(2)
        with pytest.raises(FaultInjectionError, match="mismatched"):
            sites_from_flat_specs(
                c_clean,
                np.array([0, 1]),
                np.array([0]),
                np.array([0, 0]),
                specs,
                2,
            )

    def test_bounds_checks_coordinates(self, operands):
        campaign = make_campaign("global", operands, seed=1)
        c_clean = campaign._prepared.c_clean
        specs = campaign.draw_faults(1)
        with pytest.raises(FaultInjectionError, match="outside"):
            sites_from_flat_specs(
                c_clean,
                np.array([0]),
                np.array([c_clean.shape[0] + 5]),
                np.array([0]),
                specs,
                1,
            )
