"""Tests for fault specs and the injector."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultKind,
    FaultPath,
    FaultSpec,
    apply_fault_to_accumulator,
    corrupted_value,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(row=1, col=2)
        assert spec.kind is FaultKind.BITFLIP_FP32
        assert spec.path is FaultPath.ORIGINAL

    def test_rejects_negative_coordinates(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(row=-1, col=0)

    def test_rejects_out_of_range_fp16_bit(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP16, bit=20)

    def test_rejects_out_of_range_fp32_bit(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP32, bit=40)

    @pytest.mark.parametrize("kind", [FaultKind.ADD, FaultKind.SET])
    def test_rejects_out_of_range_bit_on_value_kinds(self, kind):
        """ADD/SET ignore ``bit`` numerically, but a nonsense index is a
        malformed spec and must be rejected, not silently dropped."""
        with pytest.raises(FaultInjectionError):
            FaultSpec(row=0, col=0, kind=kind, value=1.0, bit=99)
        with pytest.raises(FaultInjectionError):
            FaultSpec(row=0, col=0, kind=kind, value=1.0, bit=-1)
        # The widest legal range stays accepted (the field is unused).
        spec = FaultSpec(row=0, col=0, kind=kind, value=1.0, bit=31)
        assert spec.bit == 31


class TestCorruptedValue:
    def test_add(self):
        spec = FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=2.5)
        assert corrupted_value(1.0, spec) == 3.5

    def test_set(self):
        spec = FaultSpec(row=0, col=0, kind=FaultKind.SET, value=-7.0)
        assert corrupted_value(123.0, spec) == -7.0

    def test_bitflip_fp32(self):
        spec = FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP32, bit=31)
        assert corrupted_value(4.0, spec) == -4.0

    def test_bitflip_fp16_quantizes_first(self):
        spec = FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP16, bit=15)
        v = 1.0 + 2 ** -20  # not representable in fp16
        assert corrupted_value(v, spec) == -1.0


class TestApply:
    def test_in_place_and_delta(self):
        c = np.zeros((4, 4), dtype=np.float32)
        c[1, 2] = 5.0
        spec = FaultSpec(row=1, col=2, kind=FaultKind.ADD, value=3.0)
        delta = apply_fault_to_accumulator(c, spec)
        assert c[1, 2] == 8.0
        assert delta == pytest.approx(3.0)
        assert c.sum() == pytest.approx(8.0)  # nothing else touched

    def test_out_of_bounds_rejected(self):
        c = np.zeros((4, 4), dtype=np.float32)
        with pytest.raises(FaultInjectionError):
            apply_fault_to_accumulator(c, FaultSpec(row=4, col=0))

    def test_non_finite_result_kept(self):
        c = np.full((2, 2), 1.0, dtype=np.float32)
        spec = FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP32, bit=30)
        apply_fault_to_accumulator(c, spec)
        assert abs(c[0, 0]) > 1e30
