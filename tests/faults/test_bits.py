"""Tests for bit-flip helpers."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import flip_fp16_bit, flip_fp32_bit


class TestFp32:
    def test_flip_is_involutive(self):
        v = 3.14159
        assert flip_fp32_bit(flip_fp32_bit(v, 12), 12) == np.float32(v)

    def test_sign_bit(self):
        assert flip_fp32_bit(2.5, 31) == -2.5

    def test_mantissa_lsb_is_tiny(self):
        v = 1.0
        assert abs(flip_fp32_bit(v, 0) - v) < 1e-6

    def test_exponent_msb_is_catastrophic(self):
        v = 1.0
        flipped = flip_fp32_bit(v, 30)
        assert abs(flipped) > 1e30

    def test_bounds(self):
        with pytest.raises(FaultInjectionError):
            flip_fp32_bit(1.0, 32)
        with pytest.raises(FaultInjectionError):
            flip_fp32_bit(1.0, -1)


class TestFp16:
    def test_flip_is_involutive(self):
        v = 0.333
        assert flip_fp16_bit(flip_fp16_bit(v, 7), 7) == float(np.float16(v))

    def test_sign_bit(self):
        assert flip_fp16_bit(2.0, 15) == -2.0

    def test_exponent_flip_can_produce_inf(self):
        # 1.0 has exponent 01111; flipping bit 14 gives exponent 11111
        # with zero mantissa: infinity.
        assert np.isinf(flip_fp16_bit(1.0, 14))

    def test_bounds(self):
        with pytest.raises(FaultInjectionError):
            flip_fp16_bit(1.0, 16)
