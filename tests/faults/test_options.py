"""CampaignOptions: the only spelling of campaign execution knobs."""

import warnings

import numpy as np
import pytest

import repro
from repro.abft import PreparedCache, get_scheme
from repro.config import DEFAULT_DETECTION
from repro.errors import FaultInjectionError
from repro.faults import CampaignOptions, FaultCampaign
from repro.faults.options import resolve_option


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(5)
    a = (rng.standard_normal((48, 32)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((32, 40)) * 0.5).astype(np.float16)
    return a, b


class TestOptionsDataclass:
    def test_defaults_are_all_unset(self):
        options = CampaignOptions()
        assert all(
            getattr(options, f) is None
            for f in (
                "seed", "detection", "significance_factor", "batch_size",
                "sparse", "cache", "workers",
            )
        )

    def test_with_defaults_fills_only_none_fields(self):
        options = CampaignOptions(seed=7).with_defaults(
            seed=0, batch_size=256
        )
        assert options.seed == 7
        assert options.batch_size == 256

    def test_with_defaults_rejects_unknown_names(self):
        with pytest.raises(TypeError, match="trials"):
            CampaignOptions().with_defaults(trials=9)

    def test_options_are_frozen(self):
        with pytest.raises(AttributeError):
            CampaignOptions().seed = 1


class TestResolution:
    def test_resolve_option_passes_through_either_side(self):
        assert resolve_option(CampaignOptions(seed=3), "X", "seed", None) == 3
        assert resolve_option(None, "X", "seed", 4) == 4
        assert resolve_option(None, "X", "seed", None) is None

    def test_resolve_option_rejects_both(self):
        with pytest.raises(FaultInjectionError, match="both"):
            resolve_option(CampaignOptions(seed=3), "X", "seed", 4)


class TestCampaignIntegration:
    def _keys(self, result):
        return [
            (r.faults, r.detected, r.significant, r.benign_alarm)
            for r in result.trials
        ]

    def test_options_path_matches_seed_kwarg(self, operands):
        a, b = operands
        cache = PreparedCache()
        via_options = FaultCampaign(
            get_scheme("global"), a, b,
            options=CampaignOptions(seed=9, cache=cache),
        ).run_batch(30)
        via_kwarg = FaultCampaign(
            get_scheme("global"), a, b, seed=9,
            options=CampaignOptions(cache=cache),
        ).run_batch(30)
        assert self._keys(via_options) == self._keys(via_kwarg)

    def test_removed_kwargs_are_rejected(self, operands):
        a, b = operands
        for kwarg in (
            {"detection": DEFAULT_DETECTION},
            {"cache": PreparedCache()},
            {"workers": 2},
        ):
            with pytest.raises(TypeError):
                FaultCampaign(get_scheme("global"), a, b, **kwarg)

    def test_options_construction_is_warning_free(self, operands):
        a, b = operands
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FaultCampaign(
                get_scheme("global"), a, b,
                options=CampaignOptions(
                    seed=1, detection=DEFAULT_DETECTION, workers=None
                ),
            )

    def test_session_campaign_rejects_conflicting_seed(self):
        session = repro.deploy("mlp_bottom", "T4", batch=16)
        with pytest.raises(FaultInjectionError, match="both"):
            session.campaign(
                "fc0", seed=1, options=CampaignOptions(seed=2)
            )

    def test_session_campaign_rejects_removed_workers_kwarg(self):
        session = repro.deploy("mlp_bottom", "T4", batch=16)
        with pytest.raises(TypeError):
            session.campaign("fc0", workers=2)

    def test_foreign_cache_in_options_rejected(self):
        session = repro.deploy("mlp_bottom", "T4", batch=16)
        with pytest.raises(repro.ConfigurationError, match="cache"):
            session.campaign(
                "fc0", options=CampaignOptions(cache=PreparedCache())
            )
