"""Detection-triggered recovery: policy semantics and bit-identity.

The contract under test (DESIGN.md §3): a transient retry re-executes
fault-free and recovers the bit-exact clean output; a sticky fault
burns the whole budget, after which the policy either raises or flags
degradation and propagates.  A recovered *pass* must be byte-identical
to a clean pass — output and recorded operands alike.
"""

import numpy as np
import pytest

from repro.abft import get_scheme
from repro.errors import ConfigurationError, RecoveryError
from repro.faults import (
    FaultKind,
    FaultSpec,
    RecoveryPolicy,
    attempt_recovery,
)
from repro.nn import ProtectedInference, SequentialModel
from repro.nn.inference import Linear, ReLU
from repro.nn.layers import LinearSpec

BIG_FAULT = FaultSpec(row=0, col=0, kind=FaultKind.SET, value=1e4)


@pytest.fixture
def mlp(rng):
    s0 = LinearSpec(24, 32)
    s1 = LinearSpec(32, 8)
    return SequentialModel(
        [
            Linear(s0, SequentialModel.random_weights_linear(s0, rng), name="fc0"),
            ReLU(),
            Linear(s1, SequentialModel.random_weights_linear(s1, rng), name="fc1"),
        ],
        name="tiny-mlp",
    )


@pytest.fixture
def x(rng):
    return (rng.standard_normal((4, 24)) * 0.5).astype(np.float16)


class TestPolicyValidation:
    def test_defaults(self):
        policy = RecoveryPolicy()
        assert policy.max_retries == 2
        assert policy.fault_model == "transient"
        assert policy.on_exhausted == "flag-and-propagate"
        assert not policy.sticky

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": 0},
            {"fault_model": "intermittent"},
            {"on_exhausted": "shrug"},
        ],
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(**kwargs)


class TestAttemptRecovery:
    """The engine-agnostic retry loop, driven by a scripted executor."""

    def _outcome(self, detected, small_operands):
        scheme = get_scheme("global")
        faults = [BIG_FAULT] if detected else []
        return get_scheme("global").execute(*small_operands, faults=faults)

    def test_clean_first_outcome_short_circuits(self, small_operands):
        clean = self._outcome(False, small_operands)
        calls = []
        attempt = attempt_recovery(
            lambda f: calls.append(f), clean, [], RecoveryPolicy()
        )
        assert attempt.outcome is clean
        assert attempt.retries == 0 and not calls
        assert not attempt.recovered and not attempt.degraded

    def test_no_policy_is_passthrough(self, small_operands):
        detected = self._outcome(True, small_operands)
        attempt = attempt_recovery(
            lambda f: pytest.fail("must not execute"), detected, [BIG_FAULT], None
        )
        assert attempt.outcome is detected and attempt.retries == 0

    def test_transient_retry_passes_no_faults(self, small_operands):
        detected = self._outcome(True, small_operands)
        seen = []

        def execute(faults):
            seen.append(tuple(faults))
            return self._outcome(False, small_operands)

        attempt = attempt_recovery(
            execute, detected, [BIG_FAULT], RecoveryPolicy(max_retries=3)
        )
        assert seen == [()]
        assert attempt.recovered and attempt.retries == 1
        assert not attempt.outcome.detected

    def test_sticky_retries_original_faults_then_degrades(self, small_operands):
        detected = self._outcome(True, small_operands)
        seen = []

        def execute(faults):
            seen.append(tuple(faults))
            return self._outcome(True, small_operands)

        attempt = attempt_recovery(
            execute,
            detected,
            [BIG_FAULT],
            RecoveryPolicy(max_retries=3, fault_model="sticky"),
        )
        assert seen == [(BIG_FAULT,)] * 3
        assert attempt.degraded and not attempt.recovered
        assert attempt.retries == 3
        # flag-and-propagate keeps the original detected outcome.
        assert attempt.outcome is detected

    def test_sticky_raise_mode(self, small_operands):
        detected = self._outcome(True, small_operands)
        policy = RecoveryPolicy(
            max_retries=2, fault_model="sticky", on_exhausted="raise"
        )
        with pytest.raises(RecoveryError, match="2 retries"):
            attempt_recovery(
                lambda f: self._outcome(True, small_operands),
                detected,
                [BIG_FAULT],
                policy,
                context="fc0",
            )


class TestInferenceRecovery:
    """RecoveryPolicy wired through ProtectedInference.run."""

    def test_transient_recovery_is_bit_identical_to_clean(self, mlp, x):
        engine = ProtectedInference(mlp, get_scheme("global"))
        clean = engine.run(x)
        recovered = engine.run(
            x, faults={"fc0": [BIG_FAULT]}, recovery=RecoveryPolicy()
        )
        assert recovered.recovered and not recovered.degraded
        # The pass continues with the clean retry outcome, so the
        # result-level detection flag is clear after recovery.
        assert not recovered.detected
        assert recovered.total_retries == 1
        assert recovered.output.tobytes() == clean.output.tobytes()

    def test_recovered_pass_commits_clean_operands(self, mlp, x):
        """A detected-and-recovered pass records the clean GEMM view.

        The recovered layer's output is bit-identical to clean, so the
        downstream activations — hence every recorded ``A`` — are the
        clean ones, and the engine may commit them for campaigns.
        """
        engine = ProtectedInference(
            mlp, get_scheme("global"), record_operands=True
        )
        engine.run(x)
        reference = {
            name: (a.tobytes(), b.tobytes())
            for name, (a, b, _tile) in engine.recorded_operands.items()
        }
        engine.recorded_operands.clear()

        engine.run(x, faults={"fc0": [BIG_FAULT]}, recovery=RecoveryPolicy())
        assert set(engine.recorded_operands) == set(reference)
        for name, (a, b, _tile) in engine.recorded_operands.items():
            assert (a.tobytes(), b.tobytes()) == reference[name], name

    def test_degraded_pass_does_not_commit_operands(self, mlp, x):
        engine = ProtectedInference(
            mlp, get_scheme("global"), record_operands=True
        )
        policy = RecoveryPolicy(max_retries=1, fault_model="sticky")
        result = engine.run(x, faults={"fc0": [BIG_FAULT]}, recovery=policy)
        assert result.degraded
        assert not engine.recorded_operands

    def test_sticky_raise_aborts_the_pass(self, mlp, x):
        engine = ProtectedInference(mlp, get_scheme("global"))
        policy = RecoveryPolicy(
            max_retries=1, fault_model="sticky", on_exhausted="raise"
        )
        with pytest.raises(RecoveryError, match="fc0"):
            engine.run(x, faults={"fc0": [BIG_FAULT]}, recovery=policy)

    def test_undetected_fault_never_retries(self, mlp, x):
        engine = ProtectedInference(mlp, get_scheme("none"))
        result = engine.run(
            x, faults={"fc0": [BIG_FAULT]}, recovery=RecoveryPolicy()
        )
        assert not result.detected
        assert result.total_retries == 0 and not result.recovered
