"""End-to-end SDC propagation campaigns (DESIGN.md §3).

Covers the detection × corruption taxonomy, the masked-trial
short-circuit, recovery accounting (transient, sticky flag-and-
propagate, sticky raise), the built-in bit-identity verification of
recovered trials, and the session surface.
"""

import numpy as np
import pytest

from repro.api import deploy
from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    RecoveryError,
)
from repro.faults import (
    FaultKind,
    FaultPath,
    FaultSpec,
    PropagationOutcome,
    RecoveryPolicy,
)
from repro.nn import build_model, build_runnable, runnable_input_shape

MODEL = "mlp_bottom"
LAYER = "fc0"

BIG = FaultSpec(row=0, col=0, kind=FaultKind.SET, value=1e4)
NOOP = FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=0.0)
CHECKSUM_BIG = FaultSpec(
    row=0, col=0, kind=FaultKind.SET, value=1e4, path=FaultPath.CHECKSUM
)


def make_session(policy="global", **kwargs):
    return deploy(
        build_model(MODEL, batch=1),
        "T4",
        policy=policy,
        runnable=build_runnable(MODEL, batch=1, seed=0),
        **kwargs,
    )


@pytest.fixture
def x():
    shape = runnable_input_shape(MODEL, batch=1)
    return (np.random.default_rng(5).standard_normal(shape) * 0.5).astype(
        np.float16
    )


@pytest.fixture
def session():
    return make_session()


class TestTaxonomy:
    def test_big_fault_is_detected_under_global(self, session, x):
        result = session.propagation_campaign(LAYER, x=x).run(0, specs=[BIG])
        (record,) = result.records
        assert record.outcome is PropagationOutcome.DETECTED
        assert record.detected and record.output_corrupted
        assert record.divergence > 0

    def test_sub_tolerance_faults_become_undetected_sdc(self, session, x):
        # With zero output tolerance, any fault the ABFT check absorbs
        # but the output does not is silent data corruption; seed 0
        # deterministically draws one such trial for this GEMM.
        result = session.propagation_campaign(
            LAYER, x=x, seed=0, output_rtol=0.0, output_atol=0.0
        ).run_batch(48)
        sdc = [
            r for r in result.records
            if r.outcome is PropagationOutcome.UNDETECTED_SDC
        ]
        assert len(sdc) == 1
        (record,) = sdc
        assert not record.detected and record.output_corrupted
        assert record.residual_sdc
        assert result.undetected_sdc_rate == 1 / 48
        # With no recovery policy, detected corruption is residual too.
        assert result.n_residual_sdc == result.n_undetected_sdc + result.count(
            PropagationOutcome.DETECTED
        )

    def test_noop_fault_is_masked(self, session, x):
        result = session.propagation_campaign(LAYER, x=x).run(0, specs=[NOOP])
        (record,) = result.records
        assert record.outcome is PropagationOutcome.MASKED
        assert record.divergence == 0.0 and not record.top1_flip

    def test_checksum_fault_is_benign_alarm(self, session, x):
        result = session.propagation_campaign(LAYER, x=x).run(
            0, specs=[CHECKSUM_BIG]
        )
        (record,) = result.records
        assert record.outcome is PropagationOutcome.BENIGN_ALARM
        assert record.detected and not record.output_corrupted

    def test_crosstab_partitions_all_trials(self, session, x):
        result = session.propagation_campaign(LAYER, x=x, seed=3).run_batch(
            24, faults_per_trial=2
        )
        crosstab = result.crosstab()
        assert set(crosstab) == {
            (False, False), (False, True), (True, False), (True, True),
        }
        assert sum(crosstab.values()) == result.n_trials == 24
        for record in result.records:
            assert crosstab[(record.detected, record.output_corrupted)] > 0

    def test_outcome_flags_are_consistent(self, session, x):
        result = session.propagation_campaign(LAYER, x=x, seed=9).run_batch(32)
        expected = {
            (False, False): PropagationOutcome.MASKED,
            (True, False): PropagationOutcome.BENIGN_ALARM,
            (True, True): PropagationOutcome.DETECTED,
            (False, True): PropagationOutcome.UNDETECTED_SDC,
        }
        for record in result.records:
            key = (record.detected, record.output_corrupted)
            assert record.outcome is expected[key]


class TestRecovery:
    def test_transient_recovers_every_detection(self, session, x):
        campaign = session.propagation_campaign(
            LAYER, x=x, seed=11, recovery=RecoveryPolicy()
        )
        result = campaign.run_batch(24)
        assert result.n_detected > 0
        # Transient retries run fault-free: recovery is deterministic,
        # and the campaign's verify_recovery pass (on by default) has
        # already asserted bit-identity to the clean trace end to end.
        assert result.n_recovered == result.n_detected
        assert result.n_degraded == 0
        assert result.total_retries >= result.n_detected
        assert result.n_residual_sdc == result.n_undetected_sdc

    def test_sticky_flag_and_propagate_degrades(self, session, x):
        policy = RecoveryPolicy(max_retries=2, fault_model="sticky")
        result = session.propagation_campaign(
            LAYER, x=x, recovery=policy
        ).run(0, specs=[BIG])
        (record,) = result.records
        assert record.degraded and not record.recovered
        assert record.retries == 2
        assert record.residual_sdc
        assert result.n_residual_sdc == 1

    def test_sticky_raise_aborts(self, session, x):
        policy = RecoveryPolicy(
            max_retries=1, fault_model="sticky", on_exhausted="raise"
        )
        campaign = session.propagation_campaign(LAYER, x=x, recovery=policy)
        with pytest.raises(RecoveryError):
            campaign.run(0, specs=[BIG])

    def test_no_policy_means_no_retries(self, session, x):
        result = session.propagation_campaign(LAYER, x=x).run(0, specs=[BIG])
        (record,) = result.records
        assert record.retries == 0
        assert not record.recovered and not record.degraded
        assert record.residual_sdc  # detected but nothing recovered it


class TestSessionSurface:
    def test_requires_numeric_realization(self, x):
        session = deploy(build_model(MODEL, batch=1), "T4")
        with pytest.raises(ConfigurationError, match="numeric"):
            session.propagation_campaign(LAYER, x=x)

    def test_rejects_unknown_layer(self, session, x):
        with pytest.raises(ConfigurationError, match="no layer"):
            session.propagation_campaign("nope", x=x)

    def test_downstream_ops_cover_the_tail(self, session, x):
        campaign = session.propagation_campaign(LAYER, x=x)
        # mlp_bottom is fc0 -> ReLU -> fc1 -> ReLU -> fc2: striking fc0
        # leaves two ReLUs and two protected linears downstream.
        assert campaign.downstream_ops == ["ReLU", "fc1", "ReLU", "fc2"]

    def test_last_layer_has_no_downstream(self, session, x):
        campaign = session.propagation_campaign("fc2", x=x)
        assert campaign.downstream_ops == []

    def test_masked_output_is_clean_output(self, session, x):
        clean = session.run(x).output
        campaign = session.propagation_campaign(LAYER, x=x)
        result = campaign.run(0, specs=[NOOP])
        assert result.records[0].outcome is PropagationOutcome.MASKED
        # The struck-GEMM injection round-tripped to the clean value,
        # so the campaign never replayed downstream — by contract the
        # model output is exactly the clean one (divergence 0.0).
        assert result.records[0].divergence == 0.0
        assert session.run(x).output.tobytes() == clean.tobytes()

    def test_specs_contract_validation(self, session, x):
        campaign = session.propagation_campaign(LAYER, x=x)
        with pytest.raises(FaultInjectionError, match="disagrees"):
            campaign.run(3, specs=[BIG])
        with pytest.raises(FaultInjectionError, match="faults_per_trial"):
            campaign.run(1, specs=[BIG], faults_per_trial=2)
