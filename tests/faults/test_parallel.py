"""Sharded campaign engine: delegation, clamping, merging, failure.

The determinism property (fixed seed => identical records at any
worker count) is pinned by hypothesis in
``tests/properties/test_sharded_determinism.py``; this file covers the
engine's machinery and edge cases: shard partitioning, the
shared-memory payload roundtrip, ``workers=1`` delegation to the
in-process path, worker counts exceeding the trial count, merged
statistics, and the failure contract (a raising or dying worker
surfaces one ``CampaignError``, promptly, with nothing leaked).
"""

import glob

import numpy as np
import pytest

from repro.abft import GlobalABFT, MultiChecksumGlobalABFT
from repro.errors import CampaignError, FaultInjectionError
from repro.faults import (
    CampaignOptions,
    FaultCampaign,
    FaultKind,
    FaultSpec,
    shard_bounds,
)
from repro.faults import parallel
from repro.faults.campaign import SpecArrays, assemble_specs, group_spec_trials
from repro.faults.parallel import attach_payload, export_payload


def _operands(seed=0, m=48, n=40, k=32):
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((k, n)) * 0.5).astype(np.float16)
    return a, b


def _record_key(record):
    """Comparable form of a TrialRecord (NaN-safe, unlike dataclass ==)."""
    delta = record.delta
    return (
        record.faults,
        "nan" if np.isnan(delta) else delta,
        record.detected,
        record.significant,
        record.benign_alarm,
    )


def _same_records(xs, ys):
    return [_record_key(r) for r in xs] == [_record_key(r) for r in ys]


def _campaign(seed=7, **kwargs):
    a, b = _operands()
    return FaultCampaign(
        GlobalABFT(), a, b, options=CampaignOptions(seed=seed, **kwargs)
    )


# ----------------------------------------------------------------------
# Shard partitioning
# ----------------------------------------------------------------------
class TestShardBounds:
    def test_tiles_the_range_contiguously(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_workers_clamped_to_trials(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_single_worker(self):
        assert shard_bounds(5, 1) == [(0, 5)]

    def test_sizes_differ_by_at_most_one(self):
        for n in range(1, 40):
            for w in range(1, 12):
                sizes = [hi - lo for lo, hi in shard_bounds(n, w)]
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1
                assert all(s > 0 for s in sizes)


# ----------------------------------------------------------------------
# Shared-memory payload roundtrip
# ----------------------------------------------------------------------
class TestPayload:
    def test_roundtrip_preserves_object_graph(self):
        obj = {
            "arr": np.arange(12, dtype=np.float32).reshape(3, 4),
            "nested": [np.float16([1.5, -2.0]), "text", 42],
            "empty": np.empty((0, 3)),
        }
        payload, shm = export_payload(obj)
        try:
            # Simulate a worker: clear the attach cache first so the
            # segment is genuinely re-opened.
            parallel._ATTACHED.pop(payload.shm_name, None)
            rebuilt = attach_payload(payload)
            np.testing.assert_array_equal(rebuilt["arr"], obj["arr"])
            np.testing.assert_array_equal(rebuilt["nested"][0], obj["nested"][0])
            assert rebuilt["nested"][1:] == ["text", 42]
            assert rebuilt["empty"].shape == (0, 3)
            assert not rebuilt["arr"].flags.writeable
        finally:
            attached = parallel._ATTACHED.pop(payload.shm_name, None)
            if attached is not None:
                attached[0].close()
            shm.close()
            shm.unlink()

    def test_prepared_execution_roundtrip(self):
        campaign = _campaign()
        prepared = campaign.prepared
        prepared.clean_reductions  # force the lazy check arrays
        payload, shm = export_payload(prepared)
        try:
            parallel._ATTACHED.pop(payload.shm_name, None)
            rebuilt = attach_payload(payload)
            np.testing.assert_array_equal(rebuilt.c_clean, prepared.c_clean)
            np.testing.assert_array_equal(rebuilt.a_pad, prepared.a_pad)
            assert rebuilt.scheme.name == prepared.scheme.name
            assert rebuilt.tile == prepared.tile
        finally:
            attached = parallel._ATTACHED.pop(payload.shm_name, None)
            if attached is not None:
                attached[0].close()
            shm.close()
            shm.unlink()


# ----------------------------------------------------------------------
# Spec arrays: the draw/assembly split the sharded path rides
# ----------------------------------------------------------------------
class TestSpecArrays:
    def test_assembly_matches_direct_draw(self):
        c1 = _campaign(seed=11)
        c2 = _campaign(seed=11)
        direct = c1.draw_faults(64, faults_per_trial=2)
        arrays = c2._draw_spec_arrays(128)
        rebuilt = group_spec_trials(assemble_specs(arrays), 2)
        assert rebuilt == [tuple(t) for t in direct]

    def test_slice_views(self):
        arrays = _campaign()._draw_spec_arrays(10)
        part = arrays.slice(3, 7)
        assert len(part) == 4
        assert assemble_specs(part) == assemble_specs(arrays)[3:7]

    def test_spec_arrays_is_columnar(self):
        arrays = _campaign()._draw_spec_arrays(5)
        assert isinstance(arrays, SpecArrays)
        assert arrays.kind_codes.dtype == np.uint8


# ----------------------------------------------------------------------
# Worker-count edge cases
# ----------------------------------------------------------------------
class TestWorkerCounts:
    def test_workers_one_delegates_in_process(self, monkeypatch):
        """workers=1 must never touch the pool machinery at all."""

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("sharded path used for workers=1")

        monkeypatch.setattr(parallel, "run_campaign_sharded", explode)
        baseline = _campaign().run_batch(20)
        delegated = _campaign(workers=1).run_batch(20)
        assert _same_records(baseline.trials, delegated.trials)

    def test_workers_exceeding_trials_clamp(self):
        baseline = _campaign().run_batch(3)
        sharded = _campaign().run_batch(3, workers=16)
        assert _same_records(baseline.trials, sharded.trials)

    def test_constructor_default_applies_to_runs(self):
        baseline = _campaign().run_batch(12)
        sharded = _campaign(workers=2).run_batch(12)
        assert _same_records(baseline.trials, sharded.trials)

    def test_per_call_override_wins(self):
        baseline = _campaign().run_batch(12)
        sharded = _campaign(workers=1).run_batch(12, workers=3)
        assert _same_records(baseline.trials, sharded.trials)

    def test_invalid_workers_rejected(self):
        with pytest.raises(FaultInjectionError, match="workers"):
            _campaign(workers=0)
        with pytest.raises(FaultInjectionError, match="workers"):
            _campaign().run_batch(10, workers=-2)

    def test_zero_trials(self):
        result = _campaign(workers=4).run_batch(0)
        assert result.n_trials == 0


# ----------------------------------------------------------------------
# Merge semantics
# ----------------------------------------------------------------------
class TestMerge:
    def test_run_with_explicit_specs_sharded(self):
        c = _campaign()
        specs = c.draw_faults(30)
        baseline = _campaign().run(0, specs=specs)
        sharded = _campaign().run(0, specs=specs, workers=3)
        assert _same_records(baseline.trials, sharded.trials)

    def test_coverage_by_fault_count_matches_unsharded(self):
        a, b = _operands()
        scheme = MultiChecksumGlobalABFT(num_checksums=2)
        base = FaultCampaign(scheme, a, b, seed=5).run_batch(
            40, faults_per_trial=3
        )
        shard = FaultCampaign(scheme, a, b, seed=5).run_batch(
            40, faults_per_trial=3, workers=4
        )
        assert shard.coverage_by_fault_count() == base.coverage_by_fault_count()
        assert shard.n_detected == base.n_detected
        assert shard.n_significant == base.n_significant
        assert shard.n_benign_alarms == base.n_benign_alarms

    def test_dense_path_shards_too(self):
        baseline = _campaign(sparse=False).run_batch(16)
        sharded = _campaign(sparse=False).run_batch(16, workers=2)
        assert _same_records(baseline.trials, sharded.trials)


# ----------------------------------------------------------------------
# Failure contract
# ----------------------------------------------------------------------
def _boom_runtime(*args, **kwargs):
    """Module-level so the pool can pickle it by reference for workers."""
    raise RuntimeError("shard exploded")


def _boom_value(*args, **kwargs):
    raise ValueError("original failure")


class TestFailure:
    def test_raising_worker_surfaces_campaign_error(self, monkeypatch):
        monkeypatch.setattr(parallel, "_run_campaign_shard", _boom_runtime)
        before = len(glob.glob("/dev/shm/psm_*"))
        with pytest.raises(CampaignError, match="worker process"):
            _campaign().run_batch(12, workers=3)
        assert len(glob.glob("/dev/shm/psm_*")) == before

    def test_cause_is_chained(self, monkeypatch):
        monkeypatch.setattr(parallel, "_run_campaign_shard", _boom_value)
        with pytest.raises(CampaignError) as excinfo:
            _campaign().run_batch(8, workers=2)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_orchestrator_rejects_ambiguous_inputs(self):
        c = _campaign()
        with pytest.raises(FaultInjectionError, match="exactly one"):
            parallel.run_campaign_sharded(c, workers=2)
        with pytest.raises(FaultInjectionError, match="n_trials"):
            parallel.run_campaign_sharded(
                c, workers=2, arrays=c._draw_spec_arrays(4)
            )


# ----------------------------------------------------------------------
# Sharded propagation campaigns
# ----------------------------------------------------------------------
class TestPropagationSharding:
    @pytest.fixture(scope="class")
    def setup(self):
        import repro
        from repro.faults import RecoveryPolicy
        from repro.nn import build_runnable, runnable_input_shape

        model = "mlp_bottom"
        runnable = build_runnable(model, batch=4, seed=0)
        x = (
            np.random.default_rng([0, 1])
            .standard_normal(runnable_input_shape(model, batch=4))
            * 0.5
        ).astype(np.float16)

        def make(workers=None):
            session = repro.deploy(
                model,
                "T4",
                batch=4,
                runnable=runnable,
                recovery=RecoveryPolicy(max_retries=1),
            )
            return session.propagation_campaign(
                "fc1", x=x, options=CampaignOptions(seed=3, workers=workers)
            )

        return make

    def test_sharded_records_identical(self, setup):
        baseline = setup().run_batch(10)
        sharded = setup(workers=3).run_batch(10)
        assert sharded.records == baseline.records
        assert sharded.crosstab() == baseline.crosstab()

    def test_per_call_override(self, setup):
        baseline = setup().run_batch(8)
        sharded = setup().run_batch(8, workers=2)
        assert sharded.records == baseline.records

    def test_raising_worker_surfaces_campaign_error(self, setup, monkeypatch):
        monkeypatch.setattr(parallel, "_run_propagation_shard", _boom_runtime)
        with pytest.raises(CampaignError, match="worker process"):
            setup().run_batch(6, workers=2)


# ----------------------------------------------------------------------
# Session / API surface
# ----------------------------------------------------------------------
class TestSessionWorkers:
    def test_session_campaign_workers_passthrough(self):
        import repro

        session = repro.deploy("mlp_bottom", "T4", batch=4)
        baseline = session.campaign("fc1", seed=2).run_batch(12)
        sharded = session.campaign(
            "fc1", options=CampaignOptions(seed=2, workers=3)
        ).run_batch(12)
        assert _same_records(baseline.trials, sharded.trials)

    def test_campaign_error_is_exported(self):
        import repro

        assert repro.CampaignError is CampaignError
        assert issubclass(CampaignError, repro.ReproError)


def test_explicit_checksum_path_specs_shard():
    """Checksum-path fault sets (benign alarms) survive the shard merge."""
    from repro.faults import FaultPath

    specs = [
        FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0 + i,
                  path=FaultPath.CHECKSUM)
        for i in range(10)
    ]
    baseline = _campaign().run(0, specs=specs)
    sharded = _campaign().run(0, specs=specs, workers=2)
    assert _same_records(baseline.trials, sharded.trials)
    assert sharded.n_benign_alarms == baseline.n_benign_alarms
    assert sharded.n_benign_alarms > 0
