"""The linter against the real tree: clean now, loud on regression.

Two halves:

* the merged tree lints clean — ``repro lint src benchmarks`` (the CI
  gate) must exit 0, so this suite fails the moment a PR introduces a
  violation without fixing or annotating it;
* *mutation* checks — textually deleting any single ``with self._lock``
  / ``with self._lazy_lock`` guard in ``abft/base.py`` or the
  ``unlink()`` call in ``faults/parallel.py`` must produce an RL002 /
  RL003 finding.  This is the acceptance property of the rules: the
  gate stays armed even when the only lexical evidence of the contract
  is removed.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source

_GUARD_RE = re.compile(r"^(\s*)with self\._(?:lazy_)?lock:\s*(?:#.*)?$")


def _delete_guard(source: str, occurrence: int) -> str:
    """Remove the Nth ``with self.<lock>:`` line, dedenting its body."""
    lines = source.splitlines(keepends=True)
    seen = -1
    for i, line in enumerate(lines):
        match = _GUARD_RE.match(line)
        if match is None:
            continue
        seen += 1
        if seen != occurrence:
            continue
        indent = len(match.group(1))
        del lines[i]
        j = i
        while j < len(lines):
            body_line = lines[j]
            if body_line.strip() == "":
                j += 1
                continue
            if len(body_line) - len(body_line.lstrip()) <= indent:
                break
            lines[j] = body_line.replace(" " * (indent + 4), " " * indent, 1)
            j += 1
        return "".join(lines)
    raise AssertionError(f"guard occurrence {occurrence} not found")


def _guard_count(path: Path) -> int:
    return sum(
        1 for line in path.read_text().splitlines() if _GUARD_RE.match(line)
    )


class TestTreeIsClean:
    def test_src_and_benchmarks_lint_clean(self, repo_root, repo_config):
        result = lint_paths(
            [repo_root / "src", repo_root / "benchmarks"], repo_config
        )
        assert result.findings == (), [f.render() for f in result.findings]
        assert result.n_files > 100  # the whole engine, not a subset

    def test_examples_lint_clean(self, repo_root, repo_config):
        result = lint_paths([repo_root / "examples"], repo_config)
        assert result.findings == (), [f.render() for f in result.findings]


class TestGuardDeletionRegression:
    def test_base_py_has_the_expected_guards(self, repo_root):
        assert _guard_count(repo_root / "src" / "repro" / "abft" / "base.py") == 5

    @pytest.mark.parametrize("occurrence", range(5))
    def test_deleting_any_lock_guard_in_base_trips_rl002(
        self, repo_root, repo_config, occurrence
    ):
        path = repo_root / "src" / "repro" / "abft" / "base.py"
        mutated = _delete_guard(path.read_text(), occurrence)
        found = lint_source(mutated, path=str(path), config=repo_config)
        assert any(f.rule == "RL002" for f in found), (
            f"deleting lock guard #{occurrence} went undetected"
        )

    def test_deleting_unlink_in_parallel_trips_rl003(self, repo_root, repo_config):
        path = repo_root / "src" / "repro" / "faults" / "parallel.py"
        source = path.read_text()
        mutated = source.replace("            shm.unlink()", "            pass")
        assert mutated != source, "expected shm.unlink() call in _gather_shards"
        found = lint_source(mutated, path=str(path), config=repo_config)
        assert any(f.rule == "RL003" for f in found)

    def test_unguarding_synthesized_memo_trips_rl002(self, repo_root, repo_config):
        path = repo_root / "src" / "repro" / "api" / "session.py"
        mutated = _delete_guard(path.read_text(), 0)
        found = lint_source(mutated, path=str(path), config=repo_config)
        assert any(
            f.rule == "RL002" and "_synthesized" in f.message for f in found
        )

    def test_removing_all_entry_trips_rl006(self, repo_root, repo_config):
        path = repo_root / "src" / "repro" / "__init__.py"
        source = path.read_text()
        mutated = source.replace('from .gpu import GPUSpec, get_gpu, list_gpus',
                                 'from .gpu import get_gpu, list_gpus')
        assert mutated != source
        found = lint_source(mutated, path=str(path), config=repo_config)
        assert any(
            f.rule == "RL006" and "GPUSpec" in f.message for f in found
        )
