"""Fixtures for the invariant-linter suite."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def repo_root() -> Path:
    """The repository root, independent of pytest's invocation cwd."""
    return Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def repo_config(repo_root: Path):
    """The repo's own [tool.repro.analysis] configuration."""
    from repro.analysis import AnalysisConfig

    return AnalysisConfig.from_pyproject(repo_root / "pyproject.toml")
