"""Framework pieces: config loading, suppression scope, reporters."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    AnalysisConfig,
    Finding,
    all_codes,
    lint_paths,
    lint_source,
    render_json,
    render_step_summary,
    render_text,
)
from repro.analysis.config import _parse_section_minimal
from repro.analysis.engine import LintResult, iter_python_files
from repro.errors import ConfigurationError


class TestConfig:
    def test_defaults_enable_every_rule(self):
        assert AnalysisConfig().enabled() == all_codes()

    def test_select_and_ignore(self):
        cfg = AnalysisConfig(select=("RL001", "RL002"), ignore=("RL002",))
        assert cfg.enabled() == ("RL001",)

    def test_unknown_code_raises(self):
        with pytest.raises(ConfigurationError, match="RL999"):
            AnalysisConfig(select=("RL999",)).enabled()

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigurationError, match="no option"):
            AnalysisConfig.from_mapping({"selct": ["RL001"]})

    def test_non_string_array_raises(self):
        with pytest.raises(ConfigurationError, match="array of strings"):
            AnalysisConfig.from_mapping({"select": "RL001"})

    def test_hyphen_keys_normalize(self):
        cfg = AnalysisConfig.from_mapping({"rl004-attrs": ["c_clean"]})
        assert cfg.rl004_attrs == ("c_clean",)

    def test_load_walks_up_to_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro.analysis]\nselect = ["RL001"]\n'
        )
        nested = tmp_path / "pkg" / "sub"
        nested.mkdir(parents=True)
        assert AnalysisConfig.load(nested).select == ("RL001",)

    def test_load_without_section_yields_defaults(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text('[tool.other]\nx = "y"\n')
        assert AnalysisConfig.load(tmp_path) == AnalysisConfig()

    def test_repo_section_parses_identically_without_tomllib(self, repo_root):
        text = (repo_root / "pyproject.toml").read_text()
        table = _parse_section_minimal(text)
        assert table is not None
        assert AnalysisConfig.from_mapping(table) == AnalysisConfig.from_pyproject(
            repo_root / "pyproject.toml"
        )

    def test_fallback_parses_multiline_arrays_and_bools(self):
        table = _parse_section_minimal(
            textwrap.dedent("""
                [tool.ruff]
                line-length = 100

                [tool.repro.analysis]
                select = [
                    "RL001",
                    "RL002",
                ]  # trailing comment
                ignore = ["RL002"]

                [tool.later]
                x = 1
            """)
        )
        assert table == {"select": ["RL001", "RL002"], "ignore": ["RL002"]}


class TestSuppressionScope:
    def test_suppression_is_rule_specific(self):
        src = textwrap.dedent("""
            import os
            token = os.urandom(16)  # repro: ignore[RL002] wrong code
        """)
        assert [f.rule for f in lint_source(src)] == ["RL001"]

    def test_multiple_codes_one_comment(self):
        src = textwrap.dedent("""
            import os
            token = os.urandom(16)  # repro: ignore[RL001,RL005] reason
        """)
        assert lint_source(src) == []

    def test_inner_line_not_covered_by_unrelated_line_comment(self):
        # A line-level ignore above the violation does not leak down.
        src = textwrap.dedent("""
            import os
            x = 1  # repro: ignore[RL001] wrong line
            token = os.urandom(16)
        """)
        assert [f.rule for f in lint_source(src)] == ["RL001"]


class TestEngine:
    def test_missing_path_raises(self):
        with pytest.raises(ConfigurationError, match="no such file"):
            lint_paths(["no/such/path"])

    def test_exclude_fragments(self, tmp_path):
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "helper.py").write_text(
            "import os\nx = os.urandom(4)\n"
        )
        (tmp_path / "mod.py").write_text("import os\nx = os.urandom(4)\n")
        result = lint_paths([tmp_path], AnalysisConfig())
        assert result.n_files == 1
        assert [f.rule for f in result.findings] == ["RL001"]

    def test_iter_python_files_deduplicates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        files = iter_python_files([target, tmp_path], AnalysisConfig())
        assert files == [target]

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("import os\nx = os.urandom(4)\n")
        (tmp_path / "a.py").write_text("import os\nx = os.urandom(4)\n")
        result = lint_paths([tmp_path], AnalysisConfig())
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)


class TestReporters:
    def _result(self) -> LintResult:
        finding = Finding(
            path="mod.py", line=2, col=5, rule="RL001", message="boom"
        )
        return LintResult(
            findings=(finding,), n_files=3, codes=all_codes()
        )

    def test_text_has_conventional_line_and_tally(self):
        text = render_text(self._result())
        assert "mod.py:2:5: RL001 boom" in text
        assert "1 finding(s) in 3 file(s)" in text

    def test_clean_text_tally(self):
        text = render_text(LintResult(findings=(), n_files=3, codes=all_codes()))
        assert "3 file(s) clean" in text

    def test_json_document(self):
        doc = json.loads(render_json(self._result()))
        assert doc["ok"] is False
        assert doc["rules"]["RL001"] == 1
        assert doc["rules"]["RL006"] == 0
        assert doc["findings"][0]["line"] == 2

    def test_step_summary_table(self):
        summary = render_step_summary(self._result())
        assert "| rule | contract | findings |" in summary
        assert "**1**" in summary and "Gate failed" in summary
        clean = render_step_summary(
            LintResult(findings=(), n_files=3, codes=all_codes())
        )
        assert "Gate passed" in clean
