"""``repro lint`` through the CLI: exit codes, --json, the summary."""

from __future__ import annotations

import json

from repro.cli import main

_VIOLATION = "import os\ntoken = os.urandom(8)\n"
_CLEAN = "import numpy as np\nrng = np.random.default_rng(7)\n"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(_VIOLATION)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "os.urandom" in out

    def test_unknown_rule_code_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert main(["lint", str(tmp_path), "--select", "RL999"]) == 2
        assert "unknown rule codes" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/here"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_ignore_silences_the_rule(self, tmp_path):
        (tmp_path / "bad.py").write_text(_VIOLATION)
        assert main(["lint", str(tmp_path), "--ignore", "RL001"]) == 0

    def test_select_narrows_the_run(self, tmp_path):
        (tmp_path / "bad.py").write_text(_VIOLATION)
        assert main(["lint", str(tmp_path), "--select", "RL002"]) == 0
        assert main(["lint", str(tmp_path), "--select", "RL001,RL002"]) == 1


class TestJson:
    def test_json_document(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(_VIOLATION)
        assert main(["lint", str(tmp_path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False and doc["files"] == 1
        assert doc["findings"][0]["rule"] == "RL001"

    def test_json_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert main(["lint", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True


class TestListRules:
    def test_lists_every_contract(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert code in out
        assert "contract:" in out and "backstops:" in out


class TestStepSummary:
    def test_summary_appended_when_env_set(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "bad.py").write_text(_VIOLATION)
        target = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
        assert main(["lint", str(tmp_path)]) == 1
        capsys.readouterr()
        summary = target.read_text()
        assert "| rule | contract | findings |" in summary
        assert "Gate failed" in summary

    def test_no_summary_without_env(self, tmp_path, monkeypatch):
        (tmp_path / "ok.py").write_text(_CLEAN)
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert main(["lint", str(tmp_path)]) == 0


class TestRepoGate:
    def test_the_ci_invocation_passes_on_the_merged_tree(self, repo_root, capsys):
        # Exactly what .github/workflows/ci.yml runs (blocking).
        assert main(
            ["lint", str(repo_root / "src"), str(repo_root / "benchmarks")]
        ) == 0
        assert "clean" in capsys.readouterr().out
