"""Per-rule fixture snippets: positive, negative, and suppressed.

Each rule gets at least one snippet that must trip it, one semantically
adjacent snippet that must not, and one suppressed positive — the
triple that pins both the detector and the escape hatch.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import AnalysisConfig, lint_source


def findings(source: str, path: str = "mod.py", config: AnalysisConfig | None = None):
    return lint_source(textwrap.dedent(source), path=path, config=config)


def codes(source: str, path: str = "mod.py", config: AnalysisConfig | None = None):
    return [f.rule for f in findings(source, path, config)]


class TestRL001Rng:
    def test_global_numpy_call_flagged(self):
        assert codes("""
            import numpy as np
            x = np.random.rand(3)
        """) == ["RL001"]

    def test_module_seed_flagged(self):
        assert codes("""
            import numpy.random
            numpy.random.seed(0)
        """) == ["RL001"]

    def test_unseeded_default_rng_flagged(self):
        assert codes("""
            from numpy.random import default_rng
            rng = default_rng()
        """) == ["RL001"]

    def test_seeded_default_rng_ok(self):
        assert codes("""
            import numpy as np
            rng = np.random.default_rng([3, 7])
            vals = rng.standard_normal(4)
        """) == []

    def test_stdlib_random_flagged(self):
        assert codes("""
            import random
            x = random.random()
        """) == ["RL001"]

    def test_seeded_stdlib_random_instance_ok(self):
        assert codes("""
            import random
            r = random.Random(42)
        """) == []

    def test_os_urandom_flagged(self):
        assert codes("""
            import os
            token = os.urandom(16)
        """) == ["RL001"]

    def test_suppressed(self):
        assert codes("""
            import os
            token = os.urandom(16)  # repro: ignore[RL001] nonce, not a record input
        """) == []

    def test_local_function_named_like_rng_ok(self):
        # Only import-rooted names resolve; a local helper is not flagged.
        assert codes("""
            def random():
                return 4
            x = random()
        """) == []


_LOCKED_CLASS = """
    import threading

    class Box:
        def __init__(self):
            self._items = {{}}
            self._lock = threading.Lock()

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def get(self, key):
            {get_body}
"""


class TestRL002Locks:
    def test_unguarded_read_flagged(self):
        src = _LOCKED_CLASS.format(get_body="return self._items.get(key)")
        assert codes(src) == ["RL002"]

    def test_guarded_read_ok(self):
        src = _LOCKED_CLASS.format(
            get_body="with self._lock:\n                return self._items.get(key)"
        )
        assert codes(src) == []

    def test_deleted_guard_still_flags_the_write(self):
        # The acceptance property: with no `with` block left anywhere,
        # the write in an ordinary method itself marks the attribute as
        # guarded, so the naked write is flagged.
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._items = {}
                    self._lock = threading.Lock()

                def put(self, key, value):
                    self._items[key] = value
        """) == ["RL002"]

    def test_init_writes_exempt(self):
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}
        """) == []

    def test_line_suppression(self):
        src = _LOCKED_CLASS.format(
            get_body="return self._items.get(key)  # repro: ignore[RL002] GIL-atomic read"
        )
        assert codes(src) == []

    def test_def_header_suppression_covers_body(self):
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._items = {}
                    self._lock = threading.Lock()

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def _get(self, key):  # repro: ignore[RL002] caller holds the lock
                    return self._items.get(key)
        """) == []

    def test_mutator_call_is_a_write(self):
        assert codes("""
            import threading

            class Box:
                def __init__(self):
                    self._items = []
                    self._lock = threading.Lock()

                def add(self, value):
                    self._items.append(value)
        """) == ["RL002"]

    def test_class_without_lock_ignored(self):
        assert codes("""
            class Plain:
                def put(self, key, value):
                    self._items = {key: value}

                def get(self, key):
                    return self._items.get(key)
        """) == []


class TestRL003Shm:
    def test_create_without_cleanup_flagged(self):
        assert codes("""
            from multiprocessing import shared_memory

            def leak(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                return shm.name
        """) == ["RL003"]

    def test_create_with_finally_cleanup_ok(self):
        assert codes("""
            from multiprocessing import shared_memory

            def careful(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                try:
                    return bytes(shm.buf[:4])
                finally:
                    shm.close()
                    shm.unlink()
        """) == []

    def test_ownership_escape_ok(self):
        assert codes("""
            from multiprocessing import shared_memory

            def export(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                return "handle", shm
        """) == []

    def test_close_without_unlink_in_finally_flagged(self):
        assert codes("""
            def gather(pool, shm):
                try:
                    return pool.results()
                finally:
                    shm.close()
        """) == ["RL003"]

    def test_attach_side_close_outside_finally_ok(self):
        # Worker-side attachments close (no unlink) outside a finally.
        assert codes("""
            from multiprocessing import shared_memory

            def attach(name):
                seg = shared_memory.SharedMemory(name=name)
                data = bytes(seg.buf[:4])
                seg.close()
                return data
        """) == []

    def test_suppressed(self):
        assert codes("""
            from multiprocessing import shared_memory

            def leak(n):
                shm = shared_memory.SharedMemory(create=True, size=n)  # repro: ignore[RL003] test helper
                return shm.name
        """) == []


class TestRL004Mutation:
    def test_subscript_store_flagged(self):
        assert codes("""
            def corrupt(prepared):
                prepared.c_clean[0, 0] = 1.0
        """) == ["RL004"]

    def test_augassign_on_alias_flagged(self):
        assert codes("""
            def corrupt(prepared):
                acc = prepared.c_clean
                acc += 1.0
        """) == ["RL004"]

    def test_fill_flagged(self):
        assert codes("""
            def corrupt(prepared):
                prepared.a_pad.fill(0.0)
        """) == ["RL004"]

    def test_out_kwarg_flagged(self):
        assert codes("""
            import numpy as np

            def corrupt(prepared, x):
                np.add(x, x, out=prepared.c_clean)
        """) == ["RL004"]

    def test_read_and_copy_ok(self):
        assert codes("""
            def consume(prepared):
                baseline = prepared.c_clean
                private = baseline.copy()
                private += 1.0
                return private.sum() + prepared.a_pad.shape[0]
        """) == []

    def test_self_write_is_construction(self):
        assert codes("""
            class Prepared:
                def _rebuild(self, c):
                    self.c_clean[...] = c
        """) == []

    def test_allowlist(self):
        cfg = AnalysisConfig(rl004_allow=("corrupt",))
        assert codes("""
            def corrupt(prepared):
                prepared.c_clean[0, 0] = 1.0
        """, config=cfg) == []

    def test_suppressed(self):
        assert codes("""
            def corrupt(prepared):
                prepared.c_clean[0, 0] = 1.0  # repro: ignore[RL004] test injects through the front door
        """) == []


class TestRL005Determinism:
    PATH = "src/repro/faults/assemble.py"

    def test_wall_clock_flagged_in_scope(self):
        assert codes("""
            import time

            def stamp(record):
                return (record, time.time())
        """, path=self.PATH) == ["RL005"]

    def test_wall_clock_ok_outside_scope(self):
        assert codes("""
            import time

            def stamp(record):
                return (record, time.time())
        """, path="src/repro/fleet/serving.py") == []

    def test_perf_counter_ok(self):
        assert codes("""
            import time

            def measure():
                return time.perf_counter()
        """, path=self.PATH) == []

    def test_set_iteration_flagged(self):
        assert codes("""
            def verdicts(layers):
                struck = set(layers)
                return [v for v in struck]
        """, path=self.PATH) == ["RL005"]

    def test_sorted_set_ok(self):
        assert codes("""
            def verdicts(layers):
                struck = set(layers)
                return [v for v in sorted(struck)]
        """, path=self.PATH) == []

    def test_set_membership_ok(self):
        assert codes("""
            def verdicts(layers, struck):
                seen = set(struck)
                return [layer for layer in layers if layer in seen]
        """, path=self.PATH) == []

    def test_suppressed(self):
        assert codes("""
            def verdicts(layers):
                return [v for v in set(layers)]  # repro: ignore[RL005] order dropped by caller
        """, path=self.PATH) == []


class TestRL006Exports:
    def test_unresolvable_entry_flagged(self):
        assert codes("""
            __all__ = ["exists", "ghost"]

            def exists():
                return 1
        """) == ["RL006"]

    def test_duplicate_flagged(self):
        assert codes("""
            __all__ = ["exists", "exists"]

            def exists():
                return 1
        """) == ["RL006"]

    def test_dynamic_all_flagged(self):
        assert codes("""
            _names = ["a"]
            __all__ = sorted(_names)
        """) == ["RL006"]

    def test_resolvable_static_all_ok(self):
        assert codes("""
            from os.path import join

            __all__ = ["join", "helper"]

            def helper():
                return join("a", "b")
        """) == []

    def test_completeness_enforced_for_configured_module(self):
        cfg = AnalysisConfig(rl006_complete=("repro",))
        result = findings("""
            from .config import Constants
            from .errors import ReproError

            __all__ = ["Constants"]
        """, path="src/repro/__init__.py", config=cfg)
        assert [f.rule for f in result] == ["RL006"]
        assert "ReproError" in result[0].message

    def test_conditional_binding_resolves(self):
        assert codes("""
            try:
                import tomllib
            except ImportError:
                tomllib = None

            __all__ = ["tomllib"]
        """) == []


class TestMetaRL000:
    def test_syntax_error_reported(self):
        assert codes("def broken(:\n    pass") == ["RL000"]

    def test_malformed_suppression_reported(self):
        assert codes("""
            x = 1  # repro: ignore[] forgot the code
        """) == ["RL000"]

    def test_bad_code_in_suppression_reported(self):
        assert codes("""
            x = 1  # repro: ignore[RL9999]
        """) == ["RL000"]


@pytest.mark.parametrize("code", ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"])
def test_every_rule_registered_with_contract(code):
    from repro.analysis import RULES

    rule = RULES[code]
    assert rule.contract and rule.backstops and rule.name
