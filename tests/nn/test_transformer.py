"""The transformer workload zoo (`repro.nn.transformer`).

Contract: a block spec lowers into the documented GEMM stream — QKV
projection, per-head score/context products, attention output, two FFN
projections — identically on both zoo surfaces: the shape-only graph
(``build_transformer_graph``) and the runnable numeric model
(``build_transformer_runnable``).  The runnable's traced GEMMs must
match the graph's problems layer for layer, so deployment plans built
from the graph drive campaigns on the runnable unchanged.
"""

import numpy as np
import pytest

from repro.abft import get_scheme
from repro.api import as_policy, deploy
from repro.errors import ShapeError
from repro.gpu import get_gpu
from repro.nn import (
    ProtectedInference,
    TransformerBlockSpec,
    build_model,
    build_runnable,
    build_transformer_graph,
    build_transformer_runnable,
    runnable_input_shape,
    transformer_models,
)
from repro.nn.transformer import TRANSFORMER_PRESETS


class TestSpec:
    def test_presets_registered_in_both_zoos(self):
        from repro.nn import list_models, runnable_models

        for name in transformer_models():
            assert name in list_models()
            assert name in runnable_models()

    def test_head_split_must_divide(self):
        with pytest.raises(ShapeError, match="divide evenly"):
            TransformerBlockSpec(d_model=100, n_heads=3, d_ff=256, seq_len=8)

    @pytest.mark.parametrize("field", ["d_model", "n_heads", "d_ff", "seq_len"])
    def test_dimensions_must_be_positive(self, field):
        kwargs = dict(d_model=64, n_heads=4, d_ff=128, seq_len=8)
        kwargs[field] = 0
        with pytest.raises(ShapeError):
            TransformerBlockSpec(**kwargs)

    def test_decoder_preset_has_long_kv(self):
        spec = TRANSFORMER_PRESETS["transformer_decoder"]
        assert spec.kv == 128 and spec.seq_len == 8
        assert TRANSFORMER_PRESETS["transformer_encoder"].kv == 32


class TestGraph:
    def test_decoder_gemm_stream(self):
        graph = build_transformer_graph("transformer_decoder")
        spec = TRANSFORMER_PRESETS["transformer_decoder"]
        dims = {
            layer.name.rsplit("/", 1)[-1]: (
                layer.problem.m, layer.problem.n, layer.problem.k
            )
            for layer in graph
        }
        m, d, dh, kv = spec.rows, spec.d_model, spec.head_dim, spec.kv
        assert dims["qkv"] == (m, 3 * d, d)
        assert dims["attn.h0.scores"] == (m, kv, dh)
        assert dims["attn.h0.ctx"] == (m, dh, kv)
        assert dims["attn.out"] == (m, d, d)
        assert dims["ffn.fc1"] == (m, spec.d_ff, d)
        assert dims["ffn.fc2"] == (m, d, spec.d_ff)
        assert len(graph) == 4 + 2 * spec.n_heads

    def test_attention_gemms_are_kind_attention(self):
        graph = build_transformer_graph("transformer_encoder")
        kinds = {layer.name.rsplit("/", 1)[-1]: layer.kind for layer in graph}
        assert kinds["attn.h0.scores"] == "attention"
        assert kinds["attn.h3.ctx"] == "attention"
        assert kinds["qkv"] == "linear" and kinds["ffn.fc1"] == "linear"

    def test_batch_scales_rows_only(self):
        one = build_transformer_graph("transformer_encoder", batch=1)
        four = build_transformer_graph("transformer_encoder", batch=4)
        for l1, l4 in zip(one, four):
            assert l4.problem.m == 4 * l1.problem.m
            assert (l4.problem.n, l4.problem.k) == (l1.problem.n, l1.problem.k)


class TestRunnable:
    @pytest.mark.parametrize("name", list(TRANSFORMER_PRESETS))
    def test_trace_matches_graph_problems(self, name):
        graph = build_model(name, batch=1)
        runnable = build_runnable(name, seed=3)
        assert runnable.linear_names == [
            layer.name.rsplit("/", 1)[-1] for layer in graph
        ]
        x = (
            np.random.default_rng(11)
            .standard_normal(runnable_input_shape(name)) * 0.5
        ).astype(np.float16)
        trace = ProtectedInference(runnable, get_scheme("global")).trace(x)
        for step, layer in zip(trace.steps, graph):
            p = layer.problem
            assert step.a.shape == (p.m, p.k), step.name
            assert step.b.shape == (p.k, p.n), step.name

    def test_weights_are_a_pure_function_of_seed(self):
        w = lambda m: [
            op.weights.tobytes() for op in m.ops
            if getattr(op, "is_linear", False) and hasattr(op, "weights")
        ]
        assert w(build_transformer_runnable("transformer_decoder", seed=5)) == \
            w(build_transformer_runnable("transformer_decoder", seed=5))
        assert w(build_transformer_runnable("transformer_decoder", seed=5)) != \
            w(build_transformer_runnable("transformer_decoder", seed=6))

    def test_clean_pass_shape_and_no_detection(self):
        runnable = build_transformer_runnable("transformer_encoder", seed=0)
        x = (
            np.random.default_rng(2)
            .standard_normal(runnable_input_shape("transformer_encoder"))
            * 0.5
        ).astype(np.float16)
        result = ProtectedInference(runnable, get_scheme("thread_onesided")).run(x)
        assert not result.detected
        spec = TRANSFORMER_PRESETS["transformer_encoder"]
        assert result.output.shape == (spec.rows, spec.d_model)


class TestDeployment:
    def test_guided_plan_covers_every_gemm(self):
        plan = as_policy("guided").assign(
            build_model("transformer_decoder"), get_gpu("T4")
        )
        assert len(plan.layer_names) == 12
        assert plan.guided_overhead_percent < 10

    @pytest.mark.parametrize("dtype", ["fp16", "int8"])
    def test_campaign_full_coverage_both_pipelines(self, dtype):
        session = deploy(
            "transformer_decoder", "T4",
            policy="guided" if dtype == "fp16" else "guided@int8",
            seed=0,
        )
        result = session.campaign("ffn.fc1", seed=0).run_batch(16)
        assert result.coverage == 1.0
        assert not result.false_negatives

    def test_propagation_campaign_on_attention_layer(self):
        session = deploy(
            "transformer_decoder", "T4", seed=0,
            runnable=build_runnable("transformer_decoder", seed=0),
        )
        x = (
            np.random.default_rng(9)
            .standard_normal(runnable_input_shape("transformer_decoder"))
            * 0.5
        ).astype(np.float16)
        result = session.propagation_campaign(
            "attn.h0.scores", x=x, seed=0
        ).run_batch(8)
        assert result.n_trials == 8
        assert result.undetected_sdc_rate == 0.0
