"""The runnable numeric zoo (`repro.nn.models.runnable`).

Contract: ``build_runnable(name)`` mirrors ``build_model(name)`` layer
for layer — identical linear names, so the numeric model drops into a
deployment plan built from the shape graph — with He-initialized
weights that are a pure function of ``seed`` (every downstream
quantity, from activations to campaign outcomes, inherits that
determinism).
"""

import numpy as np
import pytest

from repro.api import as_policy
from repro.errors import ModelZooError
from repro.gpu import get_gpu
from repro.nn import (
    build_model,
    build_runnable,
    runnable_input_shape,
    runnable_models,
)


class TestRegistry:
    def test_runnable_models_are_the_sequential_subset(self):
        names = runnable_models()
        assert names[:2] == ["mlp_bottom", "mlp_top"]
        assert len(names) >= 6  # the MLPs plus the four NoScope CNNs
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("name", ["resnet50", "vgg16", "not_a_model"])
    def test_non_runnable_names_raise(self, name):
        with pytest.raises(ModelZooError, match="no runnable realization"):
            build_runnable(name)
        with pytest.raises(ModelZooError, match="no runnable realization"):
            runnable_input_shape(name)

    def test_input_shapes(self):
        assert runnable_input_shape("mlp_bottom") == (1, 13)
        assert runnable_input_shape("mlp_bottom", batch=8)[0] == 8
        for name in runnable_models():
            shape = runnable_input_shape(name, batch=2)
            # MLPs/CNNs lead with the batch; transformer rows are
            # batch * seq_len (the GEMM row count).
            rows = build_model(name, batch=2).layers[0].problem.m
            assert shape[0] in (2, rows) and len(shape) in (2, 4)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["mlp_bottom", "mlp_top"])
    def test_same_seed_builds_identical_weights(self, name):
        first = build_runnable(name, seed=7)
        second = build_runnable(name, seed=7)
        weights = lambda m: [
            op.weights for op in m.ops if getattr(op, "is_linear", False)
        ]
        for w1, w2 in zip(weights(first), weights(second)):
            assert w1.tobytes() == w2.tobytes()

    def test_different_seeds_differ(self):
        first = build_runnable("mlp_bottom", seed=0)
        second = build_runnable("mlp_bottom", seed=1)
        w1 = next(op.weights for op in first.ops if op.is_linear)
        w2 = next(op.weights for op in second.ops if op.is_linear)
        assert w1.tobytes() != w2.tobytes()

    def test_models_do_not_share_weight_streams(self):
        """Per-model entropy: equal seeds must not clone fc0 across
        models with coincidentally equal layer shapes."""
        bottom = build_runnable("mlp_bottom", seed=0)
        top = build_runnable("mlp_top", seed=0)
        w_bottom = next(op.weights for op in bottom.ops if op.is_linear)
        w_top = next(op.weights for op in top.ops if op.is_linear)
        assert w_bottom.tobytes() != w_top.tobytes()


class TestGraphMirror:
    @pytest.mark.parametrize("name", ["mlp_bottom", "mlp_top"])
    def test_mlp_linear_names_match_the_plan(self, name):
        runnable = build_runnable(name)
        plan = as_policy("guided").assign(build_model(name, batch=1),
                                          get_gpu("T4"))
        assert runnable.linear_names == plan.layer_names

    def test_noscope_linear_names_match_the_plan(self):
        name = runnable_models()[2]  # first specialized CNN
        runnable = build_runnable(name, batch=1)
        plan = as_policy("guided").assign(build_model(name, batch=1),
                                          get_gpu("T4"))
        assert runnable.linear_names == plan.layer_names

    def test_clean_forward_pass_runs_undetected(self):
        from repro.abft import get_scheme
        from repro.nn import ProtectedInference

        model = build_runnable("mlp_bottom", seed=0)
        x = (
            np.random.default_rng(5)
            .standard_normal(runnable_input_shape("mlp_bottom"))
            * 0.5
        ).astype(np.float16)
        result = ProtectedInference(model, get_scheme("global")).run(x)
        assert not result.detected
        assert result.output.shape[0] == 1
