"""Model-zoo tests: reproduce the paper's printed aggregate intensities.

Fig. 4 / Figs. 8-11 print the FP16 aggregate arithmetic intensity of
every evaluated NN.  Eight torchvision CNNs and both DLRM MLPs must
match to within 1% — they are fully determined by the architectures.
The four NoScope-style CNNs are synthesized (DESIGN.md §6) and must
match within 5%.
"""

import pytest

from repro.errors import ModelZooError
from repro.nn import build_model, list_models
from repro.nn.models.registry import DLRM_MLPS, GENERAL_CNNS, SPECIALIZED_CNNS

#: Paper-reported FP16 aggregate arithmetic intensities (Figs. 4, 8).
PAPER_AI = {
    "squeezenet1_0": 71.1,
    "shufflenet_v2_x1_0": 76.6,
    "densenet161": 79.0,
    "resnet50": 122.0,
    "alexnet": 125.5,
    "vgg16": 155.5,
    "resnext50_32x4d": 220.8,
    "wide_resnet50_2": 220.8,
    "mlp_bottom": 7.4,
    "mlp_top": 7.7,
    "coral": 15.1,
    "roundabout": 37.9,
    "taipei": 51.9,
    "amsterdam": 52.7,
}


class TestPaperIntensities:
    @pytest.mark.parametrize("name", list(GENERAL_CNNS) + list(DLRM_MLPS))
    def test_exact_architectures_match_paper(self, name):
        model = build_model(name)
        assert model.aggregate_intensity() == pytest.approx(PAPER_AI[name], rel=0.01)

    @pytest.mark.parametrize("name", SPECIALIZED_CNNS)
    def test_synthesized_noscope_models_near_paper(self, name):
        model = build_model(name)
        assert model.aggregate_intensity() == pytest.approx(PAPER_AI[name], rel=0.05)

    def test_resnext_equals_wide_resnet(self):
        """Footnote 3: with grouping removed, ResNeXt-50's GEMM shapes
        equal Wide-ResNet-50-2's — the paper prints 220.8 for both."""
        a = build_model("resnext50_32x4d")
        b = build_model("wide_resnet50_2")
        assert [(l.problem.m, l.problem.n, l.problem.k) for l in a] == [
            (l.problem.m, l.problem.n, l.problem.k) for l in b
        ]


class TestBatchAndResolutionEffects:
    def test_dlrm_intensity_grows_with_batch(self):
        # §6.4.2: MLP-Bottom 7.4 -> 92.0 and MLP-Top 7.7 -> 175.8 at 2048.
        assert build_model("mlp_bottom", batch=2048).aggregate_intensity() == pytest.approx(92.0, rel=0.01)
        assert build_model("mlp_top", batch=2048).aggregate_intensity() == pytest.approx(175.8, rel=0.01)

    def test_resnet_intensity_drops_at_low_resolution(self):
        # §3.2: ResNet-50 has AI 122 at HD but 72 at 224x224.
        hd = build_model("resnet50").aggregate_intensity()
        small = build_model("resnet50", h=224, w=224).aggregate_intensity()
        assert small == pytest.approx(72, rel=0.05)
        assert small < hd

    def test_fig4_ordering_preserved(self):
        # Fig. 4 lists the CNNs in increasing aggregate intensity.
        values = [build_model(n).aggregate_intensity() for n in GENERAL_CNNS]
        assert values == sorted(values)


class TestFig5PerLayerRange:
    def test_resnet50_layer_intensity_range(self):
        """Fig. 5: ResNet-50 per-layer AI on HD spans ~1 to ~511."""
        model = build_model("resnet50")
        intensities = [p.arithmetic_intensity(padded=False) for p in model.problems]
        assert min(intensities) == pytest.approx(1.0, abs=0.05)
        assert max(intensities) == pytest.approx(511, rel=0.01)

    def test_wide_variance_within_model(self):
        model = build_model("resnet50")
        intensities = [p.arithmetic_intensity(padded=False) for p in model.problems]
        assert max(intensities) / min(intensities) > 100


class TestStructure:
    def test_list_models_has_paper_fourteen_plus_transformers(self):
        names = list_models()
        # The paper's fourteen evaluation networks lead the zoo...
        assert len(names) == 16
        # ...followed by the two transformer-block presets.
        assert names[-2:] == ["transformer_encoder", "transformer_decoder"]

    def test_unknown_model_raises(self):
        with pytest.raises(ModelZooError):
            build_model("resnet101")

    def test_resnet50_layer_count(self):
        # 53 convolutions + 1 FC: 1 stem + 16 blocks x 3 convs + 4
        # downsample convs + classifier.
        assert len(build_model("resnet50")) == 54

    def test_vgg16_layer_count(self):
        assert len(build_model("vgg16")) == 16  # 13 convs + 3 FCs

    def test_densenet161_layer_count(self):
        # 1 stem + 2*(6+12+36+24) dense convs + 3 transitions + 1 FC.
        assert len(build_model("densenet161")) == 1 + 2 * 78 + 3 + 1

    def test_dlrm_shapes(self):
        bottom = build_model("mlp_bottom")
        assert [(l.problem.k, l.problem.n) for l in bottom] == [
            (13, 512), (512, 256), (256, 64),
        ]
        top = build_model("mlp_top")
        assert [(l.problem.k, l.problem.n) for l in top] == [
            (512, 512), (512, 256), (256, 1),
        ]

    def test_noscope_models_fit_paper_envelope(self):
        """§6.2: 2-4 conv layers, 16-64 channels, <= 2 FC layers."""
        for name in SPECIALIZED_CNNS:
            model = build_model(name)
            convs = [l for l in model if l.kind == "conv"]
            fcs = [l for l in model if l.kind == "linear"]
            assert 2 <= len(convs) <= 4
            assert 1 <= len(fcs) <= 2
            for conv in convs:
                assert 16 <= conv.problem.n <= 64

    def test_specialized_default_batch_is_64(self):
        assert build_model("coral").batch == 64

    def test_labels_carry_model_and_layer_names(self):
        model = build_model("resnet50")
        assert model.layers[0].problem.label == "resnet50/conv1"
