"""Tests for the ModelGraph container and GraphBuilder."""

import pytest

from repro.errors import ModelZooError
from repro.gemm import GemmProblem
from repro.nn.graph import GraphBuilder, LinearLayer, ModelGraph


class TestLinearLayer:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ModelZooError):
            LinearLayer(name="x", kind="pool", problem=GemmProblem(8, 8, 8))


class TestModelGraph:
    def test_rejects_empty(self):
        with pytest.raises(ModelZooError):
            ModelGraph(name="m", batch=1, input_desc="", layers=())

    def test_totals(self):
        layers = (
            LinearLayer("a", "conv", GemmProblem(64, 64, 64)),
            LinearLayer("b", "linear", GemmProblem(8, 16, 64)),
        )
        graph = ModelGraph("m", 1, "x", layers)
        assert graph.total_flops() == sum(p.flops() for p in graph.problems)
        assert graph.aggregate_intensity() == pytest.approx(
            graph.total_flops() / graph.total_bytes()
        )
        assert len(graph) == 2


class TestGraphBuilder:
    def test_conv_updates_shape(self):
        g = GraphBuilder("m", batch=1, channels=3, h=32, w=32)
        g.conv(16, 3, stride=2, padding=1, name="c0")
        assert (g.channels, g.h, g.w) == (16, 16, 16)

    def test_conv_without_shape_update(self):
        g = GraphBuilder("m", batch=1, channels=8, h=16, w=16)
        g.conv(32, 1, name="branch", update_shape=False)
        assert (g.channels, g.h, g.w) == (8, 16, 16)

    def test_linear_flattens(self):
        g = GraphBuilder("m", batch=2, channels=4, h=3, w=3)
        g.linear(10, name="fc")
        graph = g.build("x")
        assert graph.layers[-1].problem.k == 4 * 3 * 3
        assert graph.layers[-1].problem.m == 2

    def test_pool_and_adaptive_pool(self):
        g = GraphBuilder("m", batch=1, channels=4, h=17, w=17)
        g.pool(3, 2)
        assert (g.h, g.w) == (8, 8)
        g.adaptive_pool(1, 1)
        assert (g.h, g.w) == (1, 1)

    def test_labels_prefixed_with_model_name(self):
        g = GraphBuilder("mynet", batch=1, channels=3, h=8, w=8)
        g.conv(4, 3, padding=1, name="c0")
        graph = g.build("x")
        assert graph.layers[0].problem.label == "mynet/c0"
