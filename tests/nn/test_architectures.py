"""Spot checks of individual architecture layer shapes.

These pin specific layers against hand-computed values (or torchvision
ground truth) so a regression in shape propagation is localized
immediately, not just visible as a wrong aggregate intensity.
"""

import pytest

from repro.nn import build_model


def _layer(model, name):
    for layer in model:
        if layer.name == name:
            return layer.problem
    raise AssertionError(f"layer {name!r} not found in {model.name}")


class TestResNet50:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("resnet50", h=1080, w=1920)

    def test_stem(self, model):
        p = _layer(model, "conv1")
        # 7x7/2 pad 3 on 1080x1920: 540*960 outputs, K = 3*49.
        assert (p.m, p.n, p.k) == (540 * 960, 64, 147)

    def test_first_bottleneck_convs(self, model):
        assert (_layer(model, "layer1.0.conv1").k, _layer(model, "layer1.0.conv1").n) == (64, 64)
        p2 = _layer(model, "layer1.0.conv2")
        assert (p2.m, p2.n, p2.k) == (270 * 480, 64, 576)
        assert _layer(model, "layer1.0.conv3").n == 256

    def test_stage_strides_halve_spatial(self, model):
        # layer2.0.conv2 carries stride 2: M drops from 270*480 to 135*240.
        assert _layer(model, "layer2.0.conv2").m == 135 * 240

    def test_downsample_projections(self, model):
        p = _layer(model, "layer4.0.downsample")
        assert (p.m, p.n, p.k) == (34 * 60, 2048, 1024)

    def test_classifier(self, model):
        p = _layer(model, "fc")
        assert (p.m, p.n, p.k) == (1, 1000, 2048)


class TestVGG16:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("vgg16", h=1080, w=1920)

    def test_first_conv(self, model):
        p = _layer(model, "features.conv0")
        assert (p.m, p.n, p.k) == (1080 * 1920, 64, 27)

    def test_block5_spatial(self, model):
        # Four 2x2 pools before block 5: 1080/16=67 (floor), 1920/16=120.
        p = _layer(model, "features.conv10")
        assert p.m == 67 * 120

    def test_classifier_input(self, model):
        p = _layer(model, "classifier.0")
        assert p.k == 512 * 7 * 7


class TestDenseNet161:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("densenet161")

    def test_dense_layer_widths(self, model):
        # Every dense layer: 1x1 -> 192 channels, 3x3 -> 48 channels.
        p1 = _layer(model, "denseblock1.denselayer1.conv1")
        p2 = _layer(model, "denseblock1.denselayer1.conv2")
        assert p1.n == 192 and p1.k == 96
        assert p2.n == 48 and p2.k == 192 * 9

    def test_concatenation_growth(self, model):
        # Sixth layer of block 1 sees 96 + 5*48 = 336 input channels.
        p = _layer(model, "denseblock1.denselayer6.conv1")
        assert p.k == 336

    def test_classifier_input_is_2208(self, model):
        assert _layer(model, "classifier").k == 2208


class TestSqueezeNet:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("squeezenet1_0")

    def test_fire2_shapes(self, model):
        squeeze = _layer(model, "fire2.squeeze")
        assert (squeeze.k, squeeze.n) == (96, 16)
        e1 = _layer(model, "fire2.expand1x1")
        e3 = _layer(model, "fire2.expand3x3")
        assert (e1.k, e1.n) == (16, 64)
        assert (e3.k, e3.n) == (16 * 9, 64)

    def test_fire3_consumes_concatenated_channels(self, model):
        assert _layer(model, "fire3.squeeze").k == 128


class TestShuffleNet:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("shufflenet_v2_x1_0")

    def test_stride1_unit_operates_on_half_channels(self, model):
        p = _layer(model, "stage2.1.branch2.pw1")
        assert (p.k, p.n) == (58, 58)

    def test_depthwise_substituted_dense(self, model):
        # The 3x3 "dw" conv is dense (K = C*9) per the paper's footnote 3.
        p = _layer(model, "stage2.1.branch2.dw")
        assert p.k == 58 * 9

    def test_final_conv5(self, model):
        p = _layer(model, "conv5")
        assert (p.k, p.n) == (464, 1024)


class TestAlexNet:
    def test_conv_chain(self):
        model = build_model("alexnet", h=224, w=224)
        p = _layer(model, "features.0")
        # 11x11/4 pad 2 on 224: 55x55 outputs.
        assert (p.m, p.n, p.k) == (55 * 55, 64, 3 * 121)
        assert _layer(model, "classifier.1").k == 256 * 6 * 6
