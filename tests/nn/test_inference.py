"""Tests for numeric protected inference."""

import numpy as np
import pytest

from repro.abft import GlobalABFT, NoProtection, ThreadLevelOneSided
from repro.errors import ModelZooError, ShapeError
from repro.faults import FaultKind, FaultSpec
from repro.nn import ProtectedInference, SequentialModel
from repro.nn.inference import Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, ReLU
from repro.nn.layers import Conv2dSpec, LinearSpec


@pytest.fixture
def tiny_cnn(rng):
    """conv(3->8) -> relu -> pool -> conv(8->8) -> relu -> flatten -> fc(2)."""
    c1 = Conv2dSpec(3, 8, kernel=3, padding=1)
    c2 = Conv2dSpec(8, 8, kernel=3, padding=1)
    fc = LinearSpec(8 * 5 * 5, 2)
    ops = [
        Conv2d(c1, SequentialModel.random_weights_conv(c1, rng), name="conv0"),
        ReLU(),
        MaxPool2d(2, 2),
        Conv2d(c2, SequentialModel.random_weights_conv(c2, rng), name="conv1"),
        ReLU(),
        Flatten(),
        Linear(fc, SequentialModel.random_weights_linear(fc, rng), name="fc"),
    ]
    return SequentialModel(ops, name="tiny")


@pytest.fixture
def tiny_input(rng):
    return (rng.standard_normal((2, 3, 10, 10)) * 0.5).astype(np.float16)


class TestForwardPass:
    def test_output_shape(self, tiny_cnn, tiny_input):
        engine = ProtectedInference(tiny_cnn, NoProtection())
        result = engine.run(tiny_input)
        assert result.output.shape == (2, 2)
        assert not result.detected

    def test_linear_names(self, tiny_cnn):
        assert tiny_cnn.linear_names == ["conv0", "conv1", "fc"]

    def test_protected_output_matches_unprotected(self, tiny_cnn, tiny_input):
        unprotected = ProtectedInference(tiny_cnn, NoProtection()).run(tiny_input)
        protected = ProtectedInference(tiny_cnn, ThreadLevelOneSided()).run(tiny_input)
        np.testing.assert_allclose(
            protected.output.astype(np.float32),
            unprotected.output.astype(np.float32),
            rtol=5e-3, atol=1e-3,
        )

    def test_layer_outcomes_recorded(self, tiny_cnn, tiny_input):
        result = ProtectedInference(tiny_cnn, GlobalABFT()).run(tiny_input)
        assert [rec.name for rec in result.layer_outcomes] == ["conv0", "conv1", "fc"]
        assert all(rec.scheme == "global" for rec in result.layer_outcomes)


class TestPerLayerSchemes:
    def test_scheme_map_applied(self, tiny_cnn, tiny_input):
        schemes = {"conv0": ThreadLevelOneSided(), "fc": GlobalABFT()}
        engine = ProtectedInference(
            tiny_cnn, schemes, default_scheme=NoProtection()
        )
        result = engine.run(tiny_input)
        by_name = {rec.name: rec.scheme for rec in result.layer_outcomes}
        assert by_name == {"conv0": "thread_onesided", "conv1": "none", "fc": "global"}


    def test_unknown_scheme_key_rejected(self, tiny_cnn):
        """A typo'd layer name must not silently deploy NoProtection."""
        with pytest.raises(ModelZooError, match="conv2"):
            ProtectedInference(
                tiny_cnn, {"conv0": GlobalABFT(), "conv2": GlobalABFT()}
            )


class TestSharedCache:
    def test_cached_passes_bit_identical(self, tiny_cnn, tiny_input):
        from repro.abft import PreparedCache

        plain = ProtectedInference(tiny_cnn, GlobalABFT()).run(tiny_input)
        cached_engine = ProtectedInference(
            tiny_cnn, GlobalABFT(), cache=PreparedCache()
        )
        cached = cached_engine.run(tiny_input)
        np.testing.assert_array_equal(cached.output, plain.output)

        from repro.gemm import EXECUTION_STATS

        EXECUTION_STATS.reset()
        repeat = cached_engine.run(tiny_input)
        assert EXECUTION_STATS.gemms == 0
        np.testing.assert_array_equal(repeat.output, plain.output)

    def test_recorded_operands(self, tiny_cnn, tiny_input):
        engine = ProtectedInference(
            tiny_cnn, GlobalABFT(), record_operands=True
        )
        assert engine.recorded_operands == {}
        engine.run(tiny_input)
        assert set(engine.recorded_operands) == {"conv0", "conv1", "fc"}
        a, b, tile = engine.recorded_operands["conv1"]
        assert a.shape[1] == b.shape[0] and tile is not None


class TestFaultInjectionDuringInference:
    def test_fault_in_middle_layer_detected(self, tiny_cnn, tiny_input):
        engine = ProtectedInference(tiny_cnn, ThreadLevelOneSided())
        fault = FaultSpec(row=3, col=2, kind=FaultKind.ADD, value=50.0)
        result = engine.run(tiny_input, faults={"conv1": [fault]})
        assert result.detected
        detected_layers = [r.name for r in result.layer_outcomes if r.detected]
        assert detected_layers == ["conv1"]

    def test_fault_corrupts_downstream_output(self, tiny_cnn, tiny_input):
        clean = ProtectedInference(tiny_cnn, NoProtection()).run(tiny_input)
        fault = FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=50.0)
        faulty = ProtectedInference(tiny_cnn, NoProtection()).run(
            tiny_input, faults={"conv0": [fault]}
        )
        assert not np.allclose(
            clean.output.astype(np.float32), faulty.output.astype(np.float32)
        )

    def test_unknown_fault_target_rejected(self, tiny_cnn, tiny_input):
        engine = ProtectedInference(tiny_cnn, NoProtection())
        with pytest.raises(ModelZooError):
            engine.run(tiny_input, faults={"nonexistent": []})


class TestOps:
    def test_relu(self):
        x = np.array([[-1.0, 2.0]], dtype=np.float16)
        np.testing.assert_array_equal(ReLU().forward(x), [[0.0, 2.0]])

    def test_maxpool(self):
        x = np.arange(16, dtype=np.float16).reshape(1, 1, 4, 4)
        out = MaxPool2d(2, 2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_global_avg_pool(self):
        x = np.ones((1, 3, 4, 4), dtype=np.float16) * 2
        out = GlobalAvgPool().forward(x)
        assert out.shape == (1, 3, 1, 1)
        np.testing.assert_allclose(out.ravel(), [2, 2, 2])

    def test_flatten_requires_nchw(self):
        with pytest.raises(ShapeError):
            Flatten().forward(np.zeros((2, 3), dtype=np.float16))

    def test_conv_weight_shape_validated(self, rng):
        spec = Conv2dSpec(3, 8, kernel=3)
        with pytest.raises(ShapeError):
            Conv2d(spec, np.zeros((8, 3, 5, 5), dtype=np.float16))

    def test_grouped_conv_rejected_numerically(self, rng):
        spec = Conv2dSpec(4, 4, kernel=3, groups=2)
        with pytest.raises(ModelZooError):
            Conv2d(spec, np.zeros((4, 2, 3, 3), dtype=np.float16))


class TestWeightCache:
    """Repeated forward passes reuse cached per-layer weight checksums."""

    def test_second_pass_zero_weight_reductions(self, tiny_cnn, tiny_input):
        from repro.gemm import EXECUTION_STATS

        engine = ProtectedInference(tiny_cnn, GlobalABFT())
        engine.run(tiny_input)  # first pass builds and caches weight state
        assert len(engine._weight_cache) == 3
        EXECUTION_STATS.reset()
        engine.run(tiny_input)
        assert EXECUTION_STATS.weight_reductions == 0
        # The activation-dependent half still runs per layer.
        assert EXECUTION_STATS.gemms == 3
        assert EXECUTION_STATS.activation_reductions == 3

    def test_cached_passes_bit_identical(self, tiny_cnn, tiny_input):
        cached = ProtectedInference(tiny_cnn, ThreadLevelOneSided())
        first = cached.run(tiny_input)
        second = cached.run(tiny_input)
        np.testing.assert_array_equal(first.output, second.output)
        for rec1, rec2 in zip(first.layer_outcomes, second.layer_outcomes):
            np.testing.assert_array_equal(
                rec1.outcome.c_accumulator, rec2.outcome.c_accumulator
            )
            assert rec1.outcome.verdict == rec2.outcome.verdict

    def test_fresh_engine_matches_cached_engine(self, tiny_cnn, tiny_input):
        warm = ProtectedInference(tiny_cnn, GlobalABFT())
        warm.run(tiny_input)
        cached_result = warm.run(tiny_input)
        fresh_result = ProtectedInference(tiny_cnn, GlobalABFT()).run(tiny_input)
        np.testing.assert_array_equal(cached_result.output, fresh_result.output)

    def test_fault_detection_unaffected_by_cache(self, tiny_cnn, tiny_input):
        engine = ProtectedInference(tiny_cnn, GlobalABFT())
        engine.run(tiny_input)
        fault = FaultSpec(row=3, col=2, kind=FaultKind.ADD, value=50.0)
        result = engine.run(tiny_input, faults={"conv1": [fault]})
        assert result.detected

    def test_one_entry_serves_every_batch_size(self, tiny_cnn, tiny_input):
        """The weight-side state is m-independent: a different batch
        size reuses the same cache entries with zero new weight-side
        reductions."""
        from repro.gemm import EXECUTION_STATS

        engine = ProtectedInference(tiny_cnn, GlobalABFT())
        engine.run(tiny_input)
        assert len(engine._weight_cache) == 3
        doubled = np.concatenate([tiny_input, tiny_input], axis=0)
        EXECUTION_STATS.reset()
        result = engine.run(doubled)
        assert EXECUTION_STATS.weight_reductions == 0
        assert len(engine._weight_cache) == 3
        assert not result.detected
        assert result.output.shape[0] == doubled.shape[0]

    def test_other_batch_size_output_matches_fresh_engine(
        self, tiny_cnn, tiny_input
    ):
        """Warm-cache execution at a new activation row count must agree
        with a fresh engine (the pinned tile is a legal configuration
        for any m)."""
        doubled = np.concatenate([tiny_input, tiny_input], axis=0)
        warm = ProtectedInference(tiny_cnn, GlobalABFT())
        warm.run(tiny_input)  # pins each layer's tile at batch size 1
        warm_result = warm.run(doubled)
        fresh_result = ProtectedInference(tiny_cnn, GlobalABFT()).run(doubled)
        np.testing.assert_allclose(
            warm_result.output.astype(np.float32),
            fresh_result.output.astype(np.float32),
            rtol=5e-3, atol=5e-3,
        )
