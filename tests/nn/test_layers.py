"""Tests for layer specs and pooling shape math."""

import pytest

from repro.errors import ShapeError
from repro.nn import Conv2dSpec, LinearSpec, pool_output_shape


class TestConv2dSpec:
    def test_output_hw(self):
        spec = Conv2dSpec(3, 64, kernel=7, stride=2, padding=3)
        assert spec.output_hw(1080, 1920) == (540, 960)

    def test_gemm_problem_mapping(self):
        spec = Conv2dSpec(64, 128, kernel=3, padding=1)
        p = spec.gemm_problem(batch=2, h=56, w=56)
        assert (p.m, p.n, p.k) == (2 * 56 * 56, 128, 64 * 9)

    def test_grouped_conv_scales_k(self):
        dense = Conv2dSpec(64, 64, kernel=3, padding=1)
        grouped = Conv2dSpec(64, 64, kernel=3, padding=1, groups=32)
        pd = dense.gemm_problem(batch=1, h=8, w=8)
        pg = grouped.gemm_problem(batch=1, h=8, w=8)
        assert pg.k == pd.k // 32
        # Footnote 3's observation: grouping reduces FLOPs and weight
        # bytes, lowering arithmetic intensity.
        assert pg.arithmetic_intensity() < pd.arithmetic_intensity()

    def test_rejects_groups_not_dividing(self):
        with pytest.raises(ShapeError):
            Conv2dSpec(10, 16, kernel=3, groups=3)

    def test_rejects_negative_padding(self):
        with pytest.raises(ShapeError):
            Conv2dSpec(3, 8, kernel=3, padding=-1)


class TestLinearSpec:
    def test_gemm_problem(self):
        spec = LinearSpec(2048, 1000)
        p = spec.gemm_problem(batch=4)
        assert (p.m, p.n, p.k) == (4, 1000, 2048)

    def test_rejects_zero_features(self):
        with pytest.raises(ShapeError):
            LinearSpec(0, 10)


class TestPoolShape:
    def test_floor_mode(self):
        assert pool_output_shape(15, 15, kernel=3, stride=2) == (7, 7)

    def test_ceil_mode(self):
        # 16 -> span 13: floor gives 7, ceil gives 8.
        assert pool_output_shape(16, 16, kernel=3, stride=2) == (7, 7)
        assert pool_output_shape(16, 16, kernel=3, stride=2, ceil_mode=True) == (8, 8)

    def test_ceil_mode_window_must_start_inside(self):
        # PyTorch rule: pooling 4->2 with k2/s2 ceil stays 2, not 3.
        assert pool_output_shape(4, 4, kernel=2, stride=2, ceil_mode=True) == (2, 2)

    def test_padding(self):
        assert pool_output_shape(540, 960, kernel=3, stride=2, padding=1) == (270, 480)

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            pool_output_shape(2, 2, kernel=5, stride=1)
