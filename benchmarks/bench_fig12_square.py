"""Fig. 12 — all schemes on square GEMMs from 32 to 2048.

Checks the shape claims: the thread/global crossover falls where AI
crosses the T4's CMR (between 512 and 1024), one-sided beats two-sided
nearly everywhere, and replication exceeds 70% for the last two sizes.
"""

from repro.core.profiler import PredeploymentProfiler
from repro.experiments import fig12_square_sweep
from repro.experiments.fig12_square import FIG12_SCHEMES
from repro.gemm import GemmProblem
from repro.gpu import T4


def bench_fig12(benchmark, emit):
    table = benchmark(fig12_square_sweep)
    emit("fig12_square_sweep", table)

    prof = PredeploymentProfiler(T4, schemes=FIG12_SCHEMES)
    overhead = {}
    for size in (32, 256, 512, 1024, 2048):
        entries = prof.profile(GemmProblem(size, size, size))
        base = entries["none"].time_s
        overhead[size] = {
            k: (v.time_s / base - 1) * 100 for k, v in entries.items() if k != "none"
        }
    # Crossover between 512 (AI 171 < CMR) and 1024 (AI 341 > CMR).
    assert overhead[512]["thread_onesided"] < overhead[512]["global"]
    assert overhead[1024]["global"] < overhead[1024]["thread_onesided"]
    # Replication spike.
    assert overhead[1024]["replication_single"] > 70
    assert overhead[2048]["replication_single"] > 70
    # One-sided <= two-sided at every probed size.
    for size, row in overhead.items():
        assert row["thread_onesided"] <= row["thread_twosided"] + 1e-9, size
