"""Fig. 10 — DLRM MLPs at batch 1 and 2048.

Checks the paper's batch-size story: large reductions at batch 1, a
narrowing thread-vs-global gap for MLP-Top at batch 2048, and
thread-level ABFT still winning for MLP-Bottom at batch 2048.
"""

from repro.core import IntensityGuidedABFT
from repro.experiments import fig10_dlrm
from repro.gpu import T4
from repro.nn import build_model


def bench_fig10(benchmark, emit):
    table = benchmark(fig10_dlrm)
    emit("fig10_dlrm", table)

    guided = IntensityGuidedABFT(T4)
    b1 = guided.select_for_model(build_model("mlp_bottom", batch=1))
    assert (
        b1.scheme_overhead_percent("global") / b1.guided_overhead_percent > 2.5
    )
    big = guided.select_for_model(build_model("mlp_bottom", batch=2048))
    assert big.scheme_overhead_percent("thread_onesided") < big.scheme_overhead_percent("global")
