"""Fault-detection coverage — the §2.3 single-fault guarantee.

Every protecting scheme must detect 100% of significant single faults
injected into the output accumulator.
"""

import numpy as np

from repro.abft import get_scheme
from repro.experiments import fault_coverage_experiment
from repro.faults import FaultCampaign


def bench_fault_coverage(benchmark, emit):
    table = benchmark(fault_coverage_experiment)
    emit("fault_coverage", table)

    rng = np.random.default_rng(9)
    a = (rng.standard_normal((96, 80)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((80, 64)) * 0.5).astype(np.float16)
    for name in ("global", "thread_onesided", "thread_twosided",
                 "replication_single", "replication_traditional"):
        result = FaultCampaign(get_scheme(name), a, b, seed=9).run_batch(40)
        assert result.coverage == 1.0, name
