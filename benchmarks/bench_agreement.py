"""§7.2 — analytical vs empirical selection agreement.

The purely analytical AI-vs-CMR rule must agree with the empirical
profiler on a large majority of layers, and the overhead it sacrifices
must be small — the paper's argument that the core insight survives
either implementation.
"""

from repro.experiments.agreement import agreement_fraction, agreement_study


def bench_agreement(benchmark, emit):
    table = benchmark(agreement_study)
    emit("sec72_agreement", table)
    # Disagreements cluster near the CMR boundary and on launch-bound
    # layers; ~3/4 layer-level agreement with small sacrificed overhead
    # supports the paper's §7.2 claim.
    assert agreement_fraction() >= 0.7
