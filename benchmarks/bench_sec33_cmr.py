"""§3.3 — compute-to-memory-bandwidth ratios of the discussed GPUs."""

import pytest

from repro.experiments import sec33_cmr_table
from repro.experiments.sec33_cmr import PAPER_CMRS
from repro.gpu import get_gpu


def bench_sec33_cmr(benchmark, emit):
    table = benchmark(sec33_cmr_table)
    emit("sec33_cmr", table)
    for name, paper in PAPER_CMRS.items():
        # The paper rounds its quoted CMRs (e.g. P4 "58" from 57.3).
        assert get_gpu(name).cmr == pytest.approx(paper, rel=0.02)
