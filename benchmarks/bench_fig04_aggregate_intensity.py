"""Fig. 4 — FP16 aggregate arithmetic intensity of eight CNNs.

Regenerates the bar series (model -> aggregate AI) and checks every
measured value against the paper's printed number.
"""

from repro.experiments import fig04_aggregate_intensity
from repro.experiments.fig04_intensity import PAPER_VALUES
from repro.nn import build_model


def bench_fig04(benchmark, emit):
    table = benchmark(fig04_aggregate_intensity)
    emit("fig04_aggregate_intensity", table)
    for name, paper in PAPER_VALUES.items():
        measured = build_model(name).aggregate_intensity()
        assert abs(measured - paper) / paper < 0.01, (name, measured, paper)
