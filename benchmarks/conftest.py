"""Benchmark-harness fixtures.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §8 for the index) and prints the same rows/series the paper
reports.  Rendered tables are also written to ``benchmarks/results/``
so they can be inspected after a captured pytest run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, table) -> None:
        text = table.render()
        print(f"\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
