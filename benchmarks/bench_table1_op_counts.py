"""Table 1 — per-K-step redundant work of the thread-level schemes.

The measured columns are recovered from the implemented cost plans; the
MMA counts must equal the paper's formulas exactly (Mt*Nt/2, 1, Mt/2
per step against an Mt*Nt/2 mainloop).
"""

import pytest

from repro.abft import get_scheme
from repro.experiments import table1_op_counts
from repro.gemm import GemmProblem, TileConfig, mainloop_cost


def bench_table1(benchmark, emit):
    table = benchmark(table1_op_counts)
    emit("table1_op_counts", table)

    tile = TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
    problem = GemmProblem(tile.mb, tile.nb, 4096)
    base = mainloop_cost(problem, tile).tc_flops
    expected = {
        "replication_single": tile.mt * tile.nt / 2,
        "thread_twosided": 1.0,
        "thread_onesided": tile.mt / 2,
    }
    for name, mmas_per_step in expected.items():
        plan = get_scheme(name).plan(problem, tile)
        extra = plan.kernels[0].work.matmul_flops - base
        measured = extra / base * tile.mmas_per_thread_step
        assert measured == pytest.approx(mmas_per_step), name
