"""Fig. 9 and §6.4.1 — overhead on the general-purpose CNNs at HD and 224p.

Checks that the reduction factors grow when the input resolution drops
(lower aggregate intensity -> more bandwidth-bound layers).
"""

from repro.experiments import fig09_general_cnns
from repro.experiments.fig09_cnns import resolution_effect_summary


def bench_fig09_hd(benchmark, emit):
    table = benchmark(fig09_general_cnns)
    emit("fig09_cnns_hd", table)


def bench_fig09_224(benchmark, emit):
    table = benchmark(lambda: fig09_general_cnns(h=224, w=224))
    emit("fig09_cnns_224", table)


def bench_sec641_resolution_effect(benchmark, emit):
    summary = benchmark(resolution_effect_summary)
    from repro.utils import Table

    table = Table(["resolution", "mean reduction vs global"],
                  title="§6.4.1 — resolution effect on reduction factors")
    table.add_row(["1080x1920", summary["hd"]])
    table.add_row(["224x224", summary["224"]])
    emit("sec641_resolution_effect", table)
    assert summary["224"] > summary["hd"]
