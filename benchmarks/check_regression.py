#!/usr/bin/env python3
"""CI perf-regression gate for the prepared/batched execution engine.

Compares a freshly generated ``bench_perf_prepared.py`` report against
the committed ``BENCH_prepared.json`` baseline and exits non-zero when
the engine regressed, so CI *fails* on a perf regression instead of
merely archiving an artifact.

Absolute trials/sec depends on the runner, so campaign throughput is
compared through the machine-normalized **speedup** — the prepared
path's throughput in units of the direct path's, both measured in the
same run on the same machine.  A scheme fails the gate when its speedup
drops more than ``--threshold`` (default 25%) below the committed
value.  The inference section gates on the structural property (zero
warm-pass weight-side reductions: the m-independent cache did its job)
rather than on noisy small-latency ratios.

The speedup normalizes machine *speed* away but not machine *shape*:
interpreter version and NumPy build shift the Python-bound direct path
and the NumPy-bound batched path differently.  The committed baseline
is therefore part of the CI environment contract — regenerate and
re-commit it (``bench_perf_prepared.py`` with no ``--output``) whenever
the runner image, Python, or NumPy pins change, and widen
``--threshold`` rather than deleting the gate if a runner fleet proves
noisier than 25%.

Usage (what CI runs)::

    python benchmarks/bench_perf_prepared.py --output bench_ci.json
    python benchmarks/check_regression.py --bench bench_ci.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_THRESHOLD = 0.25


def check(bench: dict, baseline: dict, threshold: float) -> list[str]:
    """All gate violations of ``bench`` against ``baseline``."""
    failures: list[str] = []
    for scheme, base_row in sorted(baseline.get("campaign", {}).items()):
        row = bench.get("campaign", {}).get(scheme)
        if row is None:
            failures.append(f"{scheme}: missing from the benchmark output")
            continue
        if row["trials"] != base_row["trials"]:
            failures.append(
                f"{scheme}: benchmark ran {row['trials']} trials but the "
                f"baseline committed {base_row['trials']} — speedups are "
                f"only comparable at equal amortization; rerun without "
                f"--quick / with --trials {base_row['trials']}"
            )
            continue
        floor = base_row["speedup"] * (1.0 - threshold)
        status = "ok" if row["speedup"] >= floor else "REGRESSED"
        print(
            f"{scheme:>18s}: speedup {row['speedup']:6.1f}x "
            f"(baseline {base_row['speedup']:6.1f}x, floor {floor:6.1f}x) "
            f"[{status}]"
        )
        if row["speedup"] < floor:
            failures.append(
                f"{scheme}: speedup {row['speedup']:.2f}x fell more than "
                f"{threshold:.0%} below the committed {base_row['speedup']:.2f}x"
            )

    inference = bench.get("inference")
    if inference is not None:
        reductions = inference.get("warm_weight_reductions")
        if reductions != 0:
            failures.append(
                f"inference: warm passes performed {reductions} weight-side "
                f"reductions; the m-independent weight cache is not amortizing"
            )
        else:
            print(f"{'inference':>18s}: warm-pass weight reductions 0 [ok]")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=pathlib.Path, required=True,
                        help="freshly generated benchmark report")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_prepared.json",
                        help="committed baseline (default: repo root)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fractional speedup drop that fails the gate "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")

    bench = json.loads(args.bench.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(bench, baseline, args.threshold)
    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nperf-regression gate passed.")


if __name__ == "__main__":
    main()
