#!/usr/bin/env python3
"""CI perf-regression gate for the prepared/batched execution engine.

Compares a freshly generated ``bench_perf_prepared.py`` report against
the committed ``BENCH_prepared.json`` baseline and exits non-zero when
the engine regressed, so CI *fails* on a perf regression instead of
merely archiving an artifact.

Absolute trials/sec depends on the runner, so campaign throughput is
compared through the machine-normalized **speedup** — each prepared
path's throughput in units of the direct path's, both measured in the
same run on the same machine.  Every ``(scheme, path)`` pair the
baseline commits to is gated independently — the dense stacked batch
and sparse re-reduction each fail the gate when their speedup drops
more than ``--threshold`` (default 25%) below the committed value, so
a regression confined to one path of one scheme cannot hide behind the
others.  The inference section gates on the structural property (zero
warm-pass weight-side reductions: the m-independent cache did its job)
rather than on noisy small-latency ratios.

When ``$GITHUB_STEP_SUMMARY`` is set (it is, in Actions), the per
scheme/path comparison is also appended there as a markdown table, so
a regression is readable from the run's Summary page without digging
through logs.

The speedup normalizes machine *speed* away but not machine *shape*:
interpreter version and NumPy build shift the Python-bound direct path
and the NumPy-bound batched path differently.  The committed baseline
is therefore part of the CI environment contract — regenerate and
re-commit it (``bench_perf_prepared.py`` with no ``--output``) whenever
the runner image, Python, or NumPy pins change, and widen
``--threshold`` rather than deleting the gate if a runner fleet proves
noisier than 25%.

Usage (what CI runs)::

    python benchmarks/bench_perf_prepared.py --output bench_ci.json
    python benchmarks/check_regression.py --bench bench_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_THRESHOLD = 0.25

#: Columns of the per-(scheme, path) comparison, shared by the console
#: log and the markdown step summary.
_COLUMNS = ("scheme", "path", "speedup", "baseline", "floor", "status")


def _iter_paths(row: dict):
    """``(path_name, path_row)`` pairs of one scheme's campaign row.

    Reads the per-path table; falls back to the flat pre-sparse schema
    (a single ``speedup``) so the gate still runs against an old
    baseline during a transition.
    """
    paths = row.get("paths")
    if paths:
        return sorted(paths.items())
    return [("prepared", {"speedup": row["speedup"]})]


def check(
    bench: dict, baseline: dict, threshold: float
) -> tuple[list[str], list[dict]]:
    """Gate violations and per-(scheme, path) comparison rows."""
    failures: list[str] = []
    rows: list[dict] = []
    for scheme, base_row in sorted(baseline.get("campaign", {}).items()):
        row = bench.get("campaign", {}).get(scheme)
        min_cores = base_row.get("min_cores")
        if min_cores and ((row or {}).get("cores") or 0) < min_cores:
            # Multiprocess rows (the sharded campaign engine) measure
            # aggregate throughput across physical cores; comparing an
            # 8-way fan-out's committed speedup against a run on a
            # smaller box would always "regress".  The baseline pins
            # the machine shape the row is meaningful on.
            cores = (row or {}).get("cores") or 0
            print(
                f"{scheme:>18s}: skipped — runner has {cores} cores, "
                f"row requires >= {min_cores} [skipped]"
            )
            for path, base_path in _iter_paths(base_row):
                rows.append({
                    "scheme": scheme,
                    "path": path,
                    "speedup": None,
                    "baseline": base_path["speedup"],
                    "floor": None,
                    "status": f"skipped ({cores} < {min_cores} cores)",
                })
            continue
        if row is None:
            failures.append(f"{scheme}: missing from the benchmark output")
            continue
        if row["trials"] != base_row["trials"]:
            failures.append(
                f"{scheme}: benchmark ran {row['trials']} trials but the "
                f"baseline committed {base_row['trials']} — speedups are "
                f"only comparable at equal amortization; rerun without "
                f"--quick / with --trials {base_row['trials']}"
            )
            continue
        bench_paths = dict(_iter_paths(row))
        for path, base_path in _iter_paths(base_row):
            bench_path = bench_paths.get(path)
            if bench_path is None and path == "prepared" and "speedup" in row:
                # Flat pre-sparse baseline vs per-path bench output: the
                # bench still emits the engine-default flat speedup, so
                # the transition gates on that instead of hard-failing.
                bench_path = {"speedup": row["speedup"]}
            if bench_path is None:
                failures.append(
                    f"{scheme}/{path}: missing from the benchmark output"
                )
                continue
            floor = base_path["speedup"] * (1.0 - threshold)
            ok = bench_path["speedup"] >= floor
            rows.append({
                "scheme": scheme,
                "path": path,
                "speedup": bench_path["speedup"],
                "baseline": base_path["speedup"],
                "floor": floor,
                "status": "ok" if ok else "REGRESSED",
            })
            print(
                f"{scheme:>18s}/{path:<6s}: speedup "
                f"{bench_path['speedup']:6.1f}x (baseline "
                f"{base_path['speedup']:6.1f}x, floor {floor:6.1f}x) "
                f"[{rows[-1]['status']}]"
            )
            if not ok:
                failures.append(
                    f"{scheme}/{path}: speedup {bench_path['speedup']:.2f}x "
                    f"fell more than {threshold:.0%} below the committed "
                    f"{base_path['speedup']:.2f}x"
                )

    inference = bench.get("inference")
    if inference is not None:
        reductions = inference.get("warm_weight_reductions")
        if reductions != 0:
            failures.append(
                f"inference: warm passes performed {reductions} weight-side "
                f"reductions; the m-independent weight cache is not amortizing"
            )
        else:
            print(f"{'inference':>18s}: warm-pass weight reductions 0 [ok]")
    return failures, rows


def render_summary(rows: list[dict], failures: list[str]) -> str:
    """Markdown summary of the gate run for the Actions UI."""
    lines = [
        "### Prepared-engine perf gate",
        "",
        "| " + " | ".join(_COLUMNS) + " |",
        "| " + " | ".join("---" for _ in _COLUMNS) + " |",
    ]
    for row in rows:
        if row["status"] == "ok":
            status = "✅ ok"
        elif row["status"] == "REGRESSED":
            status = "❌ REGRESSED"
        else:
            status = f"⏭️ {row['status']}"

        def fmt(value):
            return "—" if value is None else f"{value:.1f}x"

        lines.append(
            f"| {row['scheme']} | {row['path']} | {fmt(row['speedup'])} "
            f"| {fmt(row['baseline'])} | {fmt(row['floor'])} | {status} |"
        )
    if failures:
        lines += ["", "**Gate FAILED:**", ""]
        lines += [f"- {failure}" for failure in failures]
    else:
        lines += ["", "Gate passed: no scheme/path regressed."]
    return "\n".join(lines) + "\n"


def write_step_summary(rows: list[dict], failures: list[str]) -> None:
    """Append the markdown table to ``$GITHUB_STEP_SUMMARY`` if set."""
    target = os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return
    with open(target, "a", encoding="utf-8") as fh:
        fh.write(render_summary(rows, failures))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=pathlib.Path, required=True,
                        help="freshly generated benchmark report")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_prepared.json",
                        help="committed baseline (default: repo root)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fractional speedup drop that fails the gate "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")

    bench = json.loads(args.bench.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures, rows = check(bench, baseline, args.threshold)
    write_step_summary(rows, failures)
    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nperf-regression gate passed.")


if __name__ == "__main__":
    main()
