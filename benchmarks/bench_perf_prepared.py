#!/usr/bin/env python3
"""Perf benchmark for the prepared/batched execution engine.

Measures the two hot paths the engine amortizes (DESIGN.md §5):

* **Campaign throughput** (trials/sec): a fault-injection campaign via
  the old direct path (full ``scheme.execute`` per trial — padding,
  tile selection, clean GEMM, operand checksums every time) versus the
  batched prepared engine on *both* of its re-reduction paths — the
  dense stacked batch (``sparse=False``) and sparse re-reduction
  (DESIGN.md §1.3), reported side by side.  All paths run the *same*
  pre-drawn fault specs, so the numeric work per verdict is identical;
  only the amortization, batching, and slice sparsity differ.  Each
  path takes the best of several repetitions after one untimed warmup,
  so the number is steady-state campaign throughput (construction
  included) rather than first-touch page faults or background load.
  A fourth row (``global_multi_r2_4f``) runs the §2.4 multi-fault
  campaign mode — ``global_multi`` with two checksums and four
  simultaneous faults per trial — so the per-trial fault-set machinery
  is perf-gated alongside the single-fault paths.
* **Per-inference latency**: repeated ``ProtectedInference.run`` passes
  on one engine, cold (first pass builds the per-layer weight-checksum
  cache) versus warm (weight side fully reused).
* **Facade parity** (``session_resnet_layer``): the same campaign run
  through ``repro.deploy``'s :class:`~repro.api.ProtectedSession` on a
  deployed ResNet-50 layer versus a hand-wired ``FaultCampaign`` over
  the identical GEMM, both drawing from warm prepared caches.  The
  recorded "speedup" is raw-time / session-time — ~1.0 by
  construction — and the regression gate holds the facade's overhead
  within the same threshold as every other row, so the deployment API
  cannot quietly grow a tax over the engine it wraps.

Writes ``BENCH_prepared.json`` at the repo root so the perf trajectory
is tracked across PRs; the committed file's hand-curated ``history``
list (one snapshot row per PR, reference machine) is preserved when
the file is rewritten.  ``benchmarks/check_regression.py`` gates CI on
the committed baseline — regenerate and re-commit it deliberately when
the engine or the reference environment changes.  ``--quick`` shrinks
trials/passes for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.abft import PreparedCache, scheme_from_token
from repro.api import deploy
from repro.faults import FaultCampaign
from repro.gemm import EXECUTION_STATS
from repro.nn import ProtectedInference, SequentialModel
from repro.nn.inference import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.layers import Conv2dSpec, LinearSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Default campaign geometry/size: the "default campaign size" the
#: acceptance criterion's >= 3x throughput claim is measured at.
DEFAULT_M, DEFAULT_N, DEFAULT_K = 192, 160, 256
DEFAULT_TRIALS = 200
CAMPAIGN_SCHEMES = ("global", "thread_onesided", "thread_twosided")

#: Multi-fault campaign row: the §2.4 scheme under its target workload
#: (r simultaneous faults per trial through the sparse batched path).
MULTI_FAULT_KEY = "global_multi_r2_4f"
MULTI_FAULT_CHECKSUMS = 2
MULTI_FAULTS_PER_TRIAL = 4

#: Facade-parity row: a deployed ResNet-50 layer (224p — a late
#: bottleneck conv with a moderate 49x512x4608 GEMM) campaigned through
#: the session versus the raw engine.
SESSION_KEY = "session_resnet_layer"
SESSION_MODEL = "resnet50"
SESSION_LAYER = "layer4.2.conv2"
SESSION_RESOLUTION = 224


def _make_scheme(name: str):
    if name == "global_multi":
        return scheme_from_token(f"global_multi:{MULTI_FAULT_CHECKSUMS}")
    return scheme_from_token(name)


def _best_time(run, *, repeats: int) -> float:
    """Best wall time of ``run()`` over ``repeats`` after one warmup.

    Best-of-N is the low-variance estimator for CPU microbenchmarks:
    background load only ever adds time, so the minimum tracks the
    machine's actual capability and keeps the regression gate's
    speedup ratios stable across differently-loaded runners.
    """
    run()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        times.append(time.perf_counter() - t0)
    return min(times)


def bench_campaign(
    scheme_name: str,
    *,
    trials: int,
    seed: int,
    repeats: int,
    faults_per_trial: int = 1,
) -> dict:
    """Direct-execute vs dense vs sparse prepared campaigns, same specs.

    ``faults_per_trial > 1`` benches the multi-fault campaign mode:
    every trial injects that many simultaneous faults, so the direct
    baseline pays the same per-trial fault work as the batched paths.
    """
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((DEFAULT_M, DEFAULT_K)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((DEFAULT_K, DEFAULT_N)) * 0.5).astype(np.float16)

    campaign = FaultCampaign(_make_scheme(scheme_name), a, b, seed=seed)
    drawn = campaign.draw_faults(trials, faults_per_trial=faults_per_trial)
    trial_sets = [
        entry if isinstance(entry, tuple) else (entry,) for entry in drawn
    ]

    # Cross-check once: every path must agree on every verdict.
    scheme = _make_scheme(scheme_name)
    direct_detected = [
        scheme.execute(a, b, faults=list(faults)).detected
        for faults in trial_sets
    ]
    for sparse in (False, True):
        batched = FaultCampaign(
            _make_scheme(scheme_name), a, b, seed=seed, sparse=sparse
        ).run(len(trial_sets), specs=trial_sets)
        assert [t.detected for t in batched.trials] == direct_detected, (
            f"{'sparse' if sparse else 'dense'} path disagrees on verdicts"
        )

    # Direct baseline: what every trial cost before this engine existed.
    direct_s = _best_time(
        lambda: [
            scheme.execute(a, b, faults=list(faults)) for faults in trial_sets
        ],
        repeats=repeats,
    )

    # Batched prepared paths, construction included (prepare + baseline):
    # the dense stacked batch and sparse re-reduction, side by side.
    def prepared_run(sparse: bool):
        fresh = FaultCampaign(
            _make_scheme(scheme_name), a, b, seed=seed, sparse=sparse
        )
        fresh.run(len(trial_sets), specs=trial_sets)

    paths = {}
    for label, sparse in (("dense", False), ("sparse", True)):
        path_s = _best_time(lambda s=sparse: prepared_run(s), repeats=repeats)
        paths[label] = {
            "s": path_s,
            "trials_per_s": trials / path_s,
            "speedup": direct_s / path_s,
        }

    # ``prepared_*`` mirrors the engine's default path (sparse) so the
    # ROADMAP trajectory and history rows stay directly comparable
    # across PRs.
    return {
        "trials": trials,
        "faults_per_trial": faults_per_trial,
        "repeats": repeats,
        "direct_s": direct_s,
        "direct_trials_per_s": trials / direct_s,
        "paths": paths,
        "prepared_s": paths["sparse"]["s"],
        "prepared_trials_per_s": paths["sparse"]["trials_per_s"],
        "speedup": paths["sparse"]["speedup"],
    }


def bench_session_campaign(*, trials: int, seed: int, repeats: int) -> dict:
    """Facade parity: session campaign vs hand-wired FaultCampaign.

    Both paths run the identical pre-drawn specs against the identical
    layer GEMM with warm prepared caches (the untimed warmup primes
    them), so the measured ratio is purely the facade's per-campaign
    overhead — campaign construction through the session cache versus
    direct construction over a warm private cache.  The row's
    ``speedup`` is raw-time / session-time, ~1.0 by construction, and
    the regression gate keeps it within noise of the committed value.
    """
    session = deploy(
        SESSION_MODEL, "T4",
        h=SESSION_RESOLUTION, w=SESSION_RESOLUTION, seed=seed,
    )
    token = session.plan.layer(SESSION_LAYER).scheme
    a, b, _tile = session.layer_operands(SESSION_LAYER)
    drawn = session.campaign(SESSION_LAYER, seed=seed).draw_faults(trials)

    raw_cache = PreparedCache()
    raw_scheme = scheme_from_token(token)

    def run_raw():
        FaultCampaign(raw_scheme, a, b, seed=seed, cache=raw_cache).run(
            0, specs=drawn
        )

    def run_session():
        session.campaign(SESSION_LAYER, seed=seed).run(0, specs=drawn)

    raw_s = _best_time(run_raw, repeats=repeats)
    session_s = _best_time(run_session, repeats=repeats)
    return {
        "gate": "parity",
        "model": SESSION_MODEL,
        "layer": SESSION_LAYER,
        "scheme": token,
        "trials": trials,
        "repeats": repeats,
        "direct_s": raw_s,
        "direct_trials_per_s": trials / raw_s,
        "paths": {
            "session": {
                "s": session_s,
                "trials_per_s": trials / session_s,
                "speedup": raw_s / session_s,
            }
        },
    }


def build_model(rng: np.random.Generator) -> SequentialModel:
    """Small conv net: enough layers for the weight cache to matter."""
    c1 = Conv2dSpec(3, 16, kernel=3, padding=1)
    c2 = Conv2dSpec(16, 16, kernel=3, padding=1)
    fc = LinearSpec(16 * 8 * 8, 10)
    ops = [
        Conv2d(c1, SequentialModel.random_weights_conv(c1, rng), name="conv0"),
        ReLU(),
        MaxPool2d(2, 2),
        Conv2d(c2, SequentialModel.random_weights_conv(c2, rng), name="conv1"),
        ReLU(),
        Flatten(),
        Linear(fc, SequentialModel.random_weights_linear(fc, rng), name="fc"),
    ]
    return SequentialModel(ops, name="bench-cnn")


def bench_inference(*, passes: int, seed: int) -> dict:
    """Cold vs warm protected forward passes on one engine."""
    rng = np.random.default_rng(seed)
    model = build_model(rng)
    x = (rng.standard_normal((4, 3, 16, 16)) * 0.5).astype(np.float16)

    engine = ProtectedInference(model, scheme_from_token("global"))
    t0 = time.perf_counter()
    engine.run(x)
    cold_s = time.perf_counter() - t0

    EXECUTION_STATS.reset()
    t0 = time.perf_counter()
    for _ in range(passes):
        engine.run(x)
    warm_s = (time.perf_counter() - t0) / passes
    warm_weight_reductions = EXECUTION_STATS.weight_reductions

    return {
        "scheme": "global",
        "linear_layers": len(model.linear_names),
        "warm_passes": passes,
        "cold_pass_s": cold_s,
        "warm_pass_s": warm_s,
        "speedup": cold_s / warm_s,
        "warm_weight_reductions": warm_weight_reductions,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small trial counts for CI smoke runs")
    parser.add_argument("--trials", type=int, default=None,
                        help=f"campaign trials (default {DEFAULT_TRIALS})")
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_prepared.json")
    args = parser.parse_args()

    trials = args.trials if args.trials is not None else (
        25 if args.quick else DEFAULT_TRIALS
    )
    if trials <= 0:
        parser.error(f"--trials must be positive, got {trials}")
    passes = 3 if args.quick else 10
    repeats = 1 if args.quick else 5

    report = {
        "benchmark": "prepared-execution engine",
        "quick": args.quick,
        "campaign_problem": {"m": DEFAULT_M, "n": DEFAULT_N, "k": DEFAULT_K},
        "campaign": {},
    }
    campaign_rows = [(name, 1) for name in CAMPAIGN_SCHEMES]
    campaign_rows.append(("global_multi", MULTI_FAULTS_PER_TRIAL))
    for name, faults_per_trial in campaign_rows:
        key = name if faults_per_trial == 1 else MULTI_FAULT_KEY
        report["campaign"][key] = bench_campaign(
            name, trials=trials, seed=17, repeats=repeats,
            faults_per_trial=faults_per_trial,
        )
        row = report["campaign"][key]
        print(f"campaign[{key}]: direct {row['direct_trials_per_s']:8.1f} "
              f"trials/s -> dense {row['paths']['dense']['trials_per_s']:8.1f} "
              f"({row['paths']['dense']['speedup']:.1f}x) -> sparse "
              f"{row['paths']['sparse']['trials_per_s']:8.1f} "
              f"({row['paths']['sparse']['speedup']:.1f}x, "
              f"{row['paths']['sparse']['speedup'] / row['paths']['dense']['speedup']:.1f}x "
              f"over dense)")

    report["campaign"][SESSION_KEY] = bench_session_campaign(
        trials=trials, seed=17, repeats=repeats
    )
    row = report["campaign"][SESSION_KEY]
    print(f"campaign[{SESSION_KEY}]: raw {row['direct_trials_per_s']:8.1f} "
          f"trials/s vs session "
          f"{row['paths']['session']['trials_per_s']:8.1f} "
          f"(parity {row['paths']['session']['speedup']:.2f}x, "
          f"{row['scheme']} on {row['model']}/{row['layer']})")

    report["inference"] = bench_inference(passes=passes, seed=17)
    inf = report["inference"]
    print(f"inference: cold {inf['cold_pass_s'] * 1e3:.1f} ms -> warm "
          f"{inf['warm_pass_s'] * 1e3:.1f} ms ({inf['speedup']:.2f}x), "
          f"warm-pass weight reductions = {inf['warm_weight_reductions']}")

    # The committed BENCH_prepared.json carries a hand-curated
    # ``history`` list — one row per PR, each a snapshot taken on the
    # reference machine when that PR landed.  Rewriting the file
    # preserves that record verbatim; fresh rows are added by hand (see
    # the ROADMAP trajectory table), never synthesized from a run on an
    # arbitrary machine.
    if args.output.exists():
        try:
            prior_history = json.loads(args.output.read_text()).get("history")
        except (json.JSONDecodeError, OSError):
            prior_history = None
        if prior_history:
            report["history"] = prior_history

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Gross sanity floor only — machine-portable by design (a broken
    # batched or sparse path collapses to ~1x).  The real ratchet is
    # check_regression.py against the committed baseline.  Parity rows
    # measure facade overhead against an equally-warm engine, so their
    # floor is "not meaningfully slower than raw", not an amortization
    # multiple.
    floor = 1.5 if args.quick else 3.0
    parity_floor = 0.5
    slowest = min(
        path["speedup"]
        for r in report["campaign"].values()
        if r.get("gate") != "parity"
        for path in r["paths"].values()
    )
    if slowest < floor:
        raise SystemExit(
            f"campaign speedup regression: slowest scheme/path at "
            f"{slowest:.2f}x (floor is {floor}x)"
        )
    parity = min(
        (
            path["speedup"]
            for r in report["campaign"].values()
            if r.get("gate") == "parity"
            for path in r["paths"].values()
        ),
        default=1.0,
    )
    if parity < parity_floor:
        raise SystemExit(
            f"facade overhead regression: session campaign at "
            f"{parity:.2f}x of the raw engine (floor is {parity_floor}x)"
        )


if __name__ == "__main__":
    main()
