#!/usr/bin/env python3
"""Perf benchmark for the prepared/batched execution engine.

Measures the two hot paths the engine amortizes (DESIGN.md §8):

* **Campaign throughput** (trials/sec): a fault-injection campaign via
  the old direct path (full ``scheme.execute`` per trial — padding,
  tile selection, clean GEMM, operand checksums every time) versus the
  batched prepared engine on *both* of its re-reduction paths — the
  dense stacked batch (``sparse=False``) and sparse re-reduction
  (DESIGN.md §1.3), reported side by side.  All paths run the *same*
  pre-drawn fault specs, so the numeric work per verdict is identical;
  only the amortization, batching, and slice sparsity differ.  Each
  path takes the best of several repetitions after one untimed warmup,
  so the number is steady-state campaign throughput (construction
  included) rather than first-touch page faults or background load.
  A fourth row (``global_multi_r2_4f``) runs the §2.4 multi-fault
  campaign mode — ``global_multi`` with two checksums and four
  simultaneous faults per trial — so the per-trial fault-set machinery
  is perf-gated alongside the single-fault paths.
* **Sharded campaign throughput** (``global_sharded_8w``): the
  multiprocess engine (DESIGN.md §4) fanning one large campaign out to
  eight worker processes over a shared-memory clean state, versus the
  same specs through single-process sparse.  Aggregate speedup scales
  with physical cores, so the row records ``cores`` and the committed
  baseline carries ``min_cores`` — the regression gate skips the row
  on smaller runners rather than comparing across machine shapes.
* **Per-inference latency**: repeated ``ProtectedInference.run`` passes
  on one engine, cold (first pass builds the per-layer weight-checksum
  cache) versus warm (weight side fully reused).
* **End-to-end SDC campaign** (``sdc_resnet_e2e``): a propagation
  campaign (DESIGN.md §3) on a ResNet-50 tail surrogate — inject into
  ``layer4.2.conv2``'s GEMM, carry corruption through the remaining
  layers, classify SDC, recover detections — versus the naive
  per-trial baseline (one full protected forward pass per fault set
  plus an output compare).  Same pre-drawn specs, cross-checked for
  verdict agreement; the speedup is what the prepared injection,
  masked-trial short-circuit, and downstream replay buy end to end.
* **Facade parity** (``session_resnet_layer``): the same campaign run
  through ``repro.deploy``'s :class:`~repro.api.ProtectedSession` on a
  deployed ResNet-50 layer versus a hand-wired ``FaultCampaign`` over
  the identical GEMM, both drawing from warm prepared caches.  The
  recorded "speedup" is raw-time / session-time — ~1.0 by
  construction — and the regression gate holds the facade's overhead
  within the same threshold as every other row, so the deployment API
  cannot quietly grow a tax over the engine it wraps.
* **Fleet serving** (``fleet_serving``): a batch of concurrent clean
  requests funneled through one shared session by the asyncio serving
  layer (DESIGN.md §5) versus the same requests issued serially.  The
  BLAS-parallel GEMMs already saturate the cores, so the honest number
  is ~1x — the gate holds the serving layer's event-loop/executor/lock
  overhead near zero, and the row records the requests/s and p50/p99
  latency a served deployment actually exhibits.

Writes ``BENCH_prepared.json`` at the repo root so the perf trajectory
is tracked across PRs; the committed file's hand-curated ``history``
list (one snapshot row per PR, reference machine) is preserved when
the file is rewritten.  ``benchmarks/check_regression.py`` gates CI on
the committed baseline — regenerate and re-commit it deliberately when
the engine or the reference environment changes.  ``--quick`` shrinks
trials/passes for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import numpy as np

from repro.abft import PreparedCache, scheme_from_token
from repro.api import deploy
from repro.faults import CampaignOptions, FaultCampaign, RecoveryPolicy
from repro.fleet import SessionServer
from repro.gemm import EXECUTION_STATS
from repro.nn import ProtectedInference, SequentialModel
from repro.nn.graph import GraphBuilder
from repro.nn.inference import (
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.layers import Conv2dSpec, LinearSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Default campaign geometry/size: the "default campaign size" the
#: acceptance criterion's >= 3x throughput claim is measured at.
DEFAULT_M, DEFAULT_N, DEFAULT_K = 192, 160, 256
DEFAULT_TRIALS = 200
CAMPAIGN_SCHEMES = ("global", "thread_onesided", "thread_twosided")

#: Multi-fault campaign row: the §2.4 scheme under its target workload
#: (r simultaneous faults per trial through the sparse batched path).
MULTI_FAULT_KEY = "global_multi_r2_4f"
MULTI_FAULT_CHECKSUMS = 2
MULTI_FAULTS_PER_TRIAL = 4

#: Transformer-shaped INT8 rows: one attention-score GEMM (seq x kv x
#: head_dim) and one FFN projection (seq x d_ff x d_model) from the
#: transformer zoo's decoder preset at batch 24, campaigned through the
#: quantized executor under the scheme class intensity-guided selection
#: deploys on each shape at production size (thread-level on the
#: bandwidth-bound attention product, global on the FFN projection).
#: Gated like every other campaign row, so the INT8 prepare/inject
#: paths cannot regress silently.
TRANSFORMER_INT8_ROWS: dict[str, tuple[str, tuple[int, int, int]]] = {
    "attention_int8": ("thread_onesided@int8", (192, 192, 32)),
    "ffn_int8": ("global@int8", (192, 512, 128)),
}

#: Sharded-campaign row: the multiprocess engine (DESIGN.md §4) at its
#: reference worker count, against single-process sparse on the same
#: specs.  Aggregate speedup scales with physical cores, so the
#: committed baseline row carries ``min_cores`` and the regression
#: gate skips it on under-provisioned runners instead of comparing an
#: 8-way fan-out against a 1-core box.
SHARDED_KEY = "global_sharded_8w"
SHARDED_WORKERS = 8
SHARDED_MIN_CORES = 8
#: The sharded row runs its own, much larger campaign: fan-out pays a
#: fixed per-worker cost (fork, shm attach, result transport), so the
#: aggregate-throughput claim is only meaningful at campaign sizes
#: where that cost amortizes — at the default 200-trial size the
#: single-process sparse path finishes in ~3 ms, which no amount of
#: parallelism can beat.
SHARDED_TRIALS = 50_000
SHARDED_TRIALS_QUICK = 2_000

#: Facade-parity row: a deployed ResNet-50 layer (224p — a late
#: bottleneck conv with a moderate 49x512x4608 GEMM) campaigned through
#: the session versus the raw engine.
SESSION_KEY = "session_resnet_layer"
SESSION_MODEL = "resnet50"
SESSION_LAYER = "layer4.2.conv2"
SESSION_RESOLUTION = 224

#: End-to-end SDC row: a numeric ResNet-50 tail surrogate (the last
#: bottleneck's convs + classifier head at 7x7, so the struck GEMM is
#: the same 49x512x4608 shape the facade-parity row attacks) campaigned
#: through :class:`~repro.faults.PropagationCampaign` versus per-trial
#: full protected forward passes.
SDC_KEY = "sdc_resnet_e2e"
SDC_LAYER = "layer4.2.conv2"

#: Fleet-serving row: concurrent requests batched through one shared
#: :class:`~repro.api.ProtectedSession` by the asyncio serving layer
#: (DESIGN.md §5) versus the same requests issued serially.  The GEMM
#: work itself is BLAS-parallel, so concurrency buys overlap of the
#: Python-side pass machinery, not extra FLOPs — the committed speedup
#: is ~1x and the gate holds the serving layer's lock/queue overhead
#: near zero, the same "no quiet tax" contract as the facade-parity
#: row.  Sessions/s and tail latency are recorded alongside.
SERVING_KEY = "fleet_serving"
SERVING_MODEL = "resnet50"
SERVING_RESOLUTION = 128
SERVING_REQUESTS = 16
SERVING_REQUESTS_QUICK = 6
SERVING_CONCURRENCY = 8
SERVING_WORKERS = 4


def _make_scheme(name: str):
    if name == "global_multi":
        return scheme_from_token(f"global_multi:{MULTI_FAULT_CHECKSUMS}")
    return scheme_from_token(name)


def _best_time(run, *, repeats: int) -> float:
    """Best wall time of ``run()`` over ``repeats`` after one warmup.

    Best-of-N is the low-variance estimator for CPU microbenchmarks:
    background load only ever adds time, so the minimum tracks the
    machine's actual capability and keeps the regression gate's
    speedup ratios stable across differently-loaded runners.
    """
    run()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        times.append(time.perf_counter() - t0)
    return min(times)


def bench_campaign(
    scheme_name: str,
    *,
    trials: int,
    seed: int,
    repeats: int,
    faults_per_trial: int = 1,
    shape: tuple[int, int, int] = (DEFAULT_M, DEFAULT_N, DEFAULT_K),
) -> dict:
    """Direct-execute vs dense vs sparse prepared campaigns, same specs.

    ``faults_per_trial > 1`` benches the multi-fault campaign mode:
    every trial injects that many simultaneous faults, so the direct
    baseline pays the same per-trial fault work as the batched paths.
    ``scheme_name`` takes any deployment token (``@int8`` included —
    quantized schemes accept the same FP16 operands and quantize at
    ``prepare`` time); ``shape`` overrides the default (M, N, K).
    """
    m, n, k = shape
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((k, n)) * 0.5).astype(np.float16)

    campaign = FaultCampaign(_make_scheme(scheme_name), a, b, seed=seed)
    drawn = campaign.draw_faults(trials, faults_per_trial=faults_per_trial)
    trial_sets = [
        entry if isinstance(entry, tuple) else (entry,) for entry in drawn
    ]

    # Cross-check once: every path must agree on every verdict.
    scheme = _make_scheme(scheme_name)
    direct_detected = [
        scheme.execute(a, b, faults=list(faults)).detected
        for faults in trial_sets
    ]
    for sparse in (False, True):
        batched = FaultCampaign(
            _make_scheme(scheme_name), a, b, seed=seed, sparse=sparse
        ).run(len(trial_sets), specs=trial_sets)
        assert [t.detected for t in batched.trials] == direct_detected, (
            f"{'sparse' if sparse else 'dense'} path disagrees on verdicts"
        )

    # Direct baseline: what every trial cost before this engine existed.
    direct_s = _best_time(
        lambda: [
            scheme.execute(a, b, faults=list(faults)) for faults in trial_sets
        ],
        repeats=repeats,
    )

    # Batched prepared paths, construction included (prepare + baseline):
    # the dense stacked batch and sparse re-reduction, side by side.
    def prepared_run(sparse: bool):
        fresh = FaultCampaign(
            _make_scheme(scheme_name), a, b, seed=seed, sparse=sparse
        )
        fresh.run(len(trial_sets), specs=trial_sets)

    paths = {}
    for label, sparse in (("dense", False), ("sparse", True)):
        path_s = _best_time(lambda s=sparse: prepared_run(s), repeats=repeats)
        paths[label] = {
            "s": path_s,
            "trials_per_s": trials / path_s,
            "speedup": direct_s / path_s,
        }

    # ``prepared_*`` mirrors the engine's default path (sparse) so the
    # ROADMAP trajectory and history rows stay directly comparable
    # across PRs.
    return {
        "trials": trials,
        "faults_per_trial": faults_per_trial,
        "problem": {"m": m, "n": n, "k": k},
        "repeats": repeats,
        "direct_s": direct_s,
        "direct_trials_per_s": trials / direct_s,
        "paths": paths,
        "prepared_s": paths["sparse"]["s"],
        "prepared_trials_per_s": paths["sparse"]["trials_per_s"],
        "speedup": paths["sparse"]["speedup"],
    }


def bench_sharded_campaign(*, trials: int, seed: int, repeats: int) -> dict:
    """Multiprocess sharded campaign vs single-process sparse, same specs.

    Both sides run the identical pre-drawn fault specs through the
    sparse prepared path; the sharded side fans the trial range out to
    ``SHARDED_WORKERS`` processes over one shared-memory clean state
    (DESIGN.md §4).  Records are cross-checked for verdict identity —
    the determinism contract says sharding may change *when* a trial
    runs, never what it reports.  The row records ``cores`` so the
    regression gate can tell a real regression from a small machine.
    """
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((DEFAULT_M, DEFAULT_K)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((DEFAULT_K, DEFAULT_N)) * 0.5).astype(np.float16)
    drawn = FaultCampaign(
        scheme_from_token("global"), a, b, seed=seed
    ).draw_faults(trials)

    def run(workers=None):
        return FaultCampaign(
            scheme_from_token("global"), a, b, seed=seed
        ).run(0, specs=drawn, workers=workers)

    assert (
        [t.detected for t in run(SHARDED_WORKERS).trials]
        == [t.detected for t in run().trials]
    ), "sharded campaign disagrees with single-process verdicts"

    single_s = _best_time(run, repeats=repeats)
    sharded_s = _best_time(
        lambda: run(SHARDED_WORKERS), repeats=repeats
    )
    return {
        "gate": "sharded",
        "scheme": "global",
        "workers": SHARDED_WORKERS,
        "cores": os.cpu_count(),
        "min_cores": SHARDED_MIN_CORES,
        "trials": trials,
        "repeats": repeats,
        "direct_s": single_s,
        "direct_trials_per_s": trials / single_s,
        "paths": {
            "sharded": {
                "s": sharded_s,
                "trials_per_s": trials / sharded_s,
                "speedup": single_s / sharded_s,
            }
        },
    }


def bench_session_campaign(*, trials: int, seed: int, repeats: int) -> dict:
    """Facade parity: session campaign vs hand-wired FaultCampaign.

    Both paths run the identical pre-drawn specs against the identical
    layer GEMM with warm prepared caches (the untimed warmup primes
    them), so the measured ratio is purely the facade's per-campaign
    overhead — campaign construction through the session cache versus
    direct construction over a warm private cache.  The row's
    ``speedup`` is raw-time / session-time, ~1.0 by construction, and
    the regression gate keeps it within noise of the committed value.
    """
    session = deploy(
        SESSION_MODEL, "T4",
        h=SESSION_RESOLUTION, w=SESSION_RESOLUTION, seed=seed,
    )
    token = session.plan.layer(SESSION_LAYER).scheme
    a, b, _tile = session.layer_operands(SESSION_LAYER)
    drawn = session.campaign(SESSION_LAYER, seed=seed).draw_faults(trials)

    raw_cache = PreparedCache()
    raw_scheme = scheme_from_token(token)

    def run_raw():
        FaultCampaign(
            raw_scheme, a, b,
            options=CampaignOptions(seed=seed, cache=raw_cache),
        ).run(0, specs=drawn)

    def run_session():
        session.campaign(SESSION_LAYER, seed=seed).run(0, specs=drawn)

    raw_s = _best_time(run_raw, repeats=repeats)
    session_s = _best_time(run_session, repeats=repeats)
    return {
        "gate": "parity",
        "model": SESSION_MODEL,
        "layer": SESSION_LAYER,
        "scheme": token,
        "trials": trials,
        "repeats": repeats,
        "direct_s": raw_s,
        "direct_trials_per_s": trials / raw_s,
        "paths": {
            "session": {
                "s": session_s,
                "trials_per_s": trials / session_s,
                "speedup": raw_s / session_s,
            }
        },
    }


def _resnet_tail(rng: np.random.Generator) -> tuple:
    """Shape-level graph + numeric surrogate of the ResNet-50 tail.

    The last bottleneck's 3x3 conv (the 49x512x4608 GEMM the
    facade-parity row attacks), its 1x1 expansion, global average
    pooling, and the 1000-way classifier — the smallest model on which
    "does the fault flip the ImageNet top-1?" is a real question.
    """
    builder = GraphBuilder("resnet50_tail", batch=1, channels=512, h=7, w=7)
    builder.conv(512, 3, padding=1, name=SDC_LAYER)
    builder.conv(2048, 1, name="layer4.2.conv3")
    builder.adaptive_pool(1, 1)
    builder.linear(1000, name="fc")
    graph = builder.build("1x512x7x7 layer4 activations")

    c2 = Conv2dSpec(512, 512, kernel=3, padding=1)
    c3 = Conv2dSpec(512, 2048, kernel=1)
    fc = LinearSpec(2048, 1000)
    ops = [
        Conv2d(c2, SequentialModel.random_weights_conv(c2, rng), name=SDC_LAYER),
        ReLU(),
        Conv2d(c3, SequentialModel.random_weights_conv(c3, rng),
               name="layer4.2.conv3"),
        ReLU(),
        GlobalAvgPool(),
        Flatten(),
        Linear(fc, SequentialModel.random_weights_linear(fc, rng), name="fc"),
    ]
    return graph, SequentialModel(ops, name="resnet50_tail")


def bench_sdc_e2e(*, trials: int, seed: int, repeats: int) -> dict:
    """End-to-end SDC campaign vs per-trial full forward passes.

    The naive baseline answers "did this fault silently corrupt the
    output?" the only way available without the propagation engine:
    one full protected forward pass per fault set, compared against a
    clean reference pass.  The campaign path answers it through the
    prepared injector — masked trials short-circuit, corrupted ones
    replay only the downstream layers from the session's shared cache —
    with transient recovery plus bit-identity verification of every
    recovered trial folded in.  Both paths run the identical pre-drawn
    specs and are cross-checked for detection-verdict agreement.
    """
    rng = np.random.default_rng(seed)
    graph, runnable = _resnet_tail(rng)
    session = deploy(graph, "T4", runnable=runnable, seed=seed)
    token = session.plan.layer(SDC_LAYER).scheme
    x = (rng.standard_normal((1, 512, 7, 7)) * 0.5).astype(np.float16)
    session.run(x)  # record operands so the draw targets the real GEMM
    drawn = session.campaign(SDC_LAYER, seed=seed).draw_faults(trials)
    policy = RecoveryPolicy(max_retries=2, fault_model="transient")

    # Cross-check once: the campaign's per-trial verdicts must agree
    # with what full faulted forward passes report for the same specs.
    result = session.propagation_campaign(
        SDC_LAYER, x=x, seed=seed, recovery=policy
    ).run(0, specs=drawn)
    direct_detected = [
        session.run(x, faults={SDC_LAYER: [spec]}).detected for spec in drawn
    ]
    assert [r.detected for r in result.records] == direct_detected, (
        "propagation campaign disagrees with full-pass verdicts"
    )

    def run_direct():
        clean = session.run(x).output
        for spec in drawn:
            res = session.run(x, faults={SDC_LAYER: [spec]})
            _classified = res.detected, bool(
                np.argmax(res.output) != np.argmax(clean)
            )

    def run_campaign():
        session.propagation_campaign(
            SDC_LAYER, x=x, seed=seed, recovery=policy
        ).run(0, specs=drawn)

    direct_s = _best_time(run_direct, repeats=repeats)
    e2e_s = _best_time(run_campaign, repeats=repeats)
    return {
        "gate": "e2e",
        "model": "resnet50_tail",
        "layer": SDC_LAYER,
        "scheme": token,
        "recovery": f"transient,max_retries={policy.max_retries}",
        "trials": trials,
        "repeats": repeats,
        "sdc_rate": result.undetected_sdc_rate,
        "n_detected": result.n_detected,
        "n_recovered": result.n_recovered,
        "direct_s": direct_s,
        "direct_trials_per_s": trials / direct_s,
        "paths": {
            "e2e": {
                "s": e2e_s,
                "trials_per_s": trials / e2e_s,
                "speedup": direct_s / e2e_s,
            }
        },
    }


def bench_fleet_serving(*, requests: int, seed: int, repeats: int) -> dict:
    """Concurrent serving through one shared session vs a serial loop.

    Both paths push the identical clean-request stream through the
    same warm deployed session; the serial loop calls ``session.run``
    back to back while the serving path funnels the batch through
    :class:`~repro.fleet.SessionServer`'s thread pool behind an asyncio
    concurrency gate.  The measured ratio is the serving layer's
    overhead (event loop, executor hop, stats lock) against whatever
    overlap the GIL-releasing GEMMs allow — ~1x by construction, and
    the regression gate keeps it from quietly collapsing.  The row also
    records the batch's requests/s and p50/p99 latency, the numbers a
    deployment actually serves under.
    """
    session = deploy(
        SERVING_MODEL, "T4",
        h=SERVING_RESOLUTION, w=SERVING_RESOLUTION, seed=seed,
    )
    session.run()  # prepare every layer once, outside both timed paths

    def run_serial():
        for _ in range(requests):
            session.run()

    reports = []
    with SessionServer(session, max_workers=SERVING_WORKERS) as server:

        def run_serving():
            reports.append(
                server.serve_blocking(
                    requests, concurrency=SERVING_CONCURRENCY
                )
            )

        direct_s = _best_time(run_serial, repeats=repeats)
        serving_s = _best_time(run_serving, repeats=repeats)
    best = min(reports, key=lambda r: r.total_s)
    return {
        "gate": "serving",
        "model": SERVING_MODEL,
        "resolution": SERVING_RESOLUTION,
        "concurrency": SERVING_CONCURRENCY,
        "max_workers": SERVING_WORKERS,
        "trials": requests,
        "repeats": repeats,
        "requests_per_s": best.requests_per_s,
        "p50_ms": best.p50_ms,
        "p99_ms": best.p99_ms,
        "direct_s": direct_s,
        "direct_trials_per_s": requests / direct_s,
        "paths": {
            "serving": {
                "s": serving_s,
                "trials_per_s": requests / serving_s,
                "speedup": direct_s / serving_s,
            }
        },
    }


def build_model(rng: np.random.Generator) -> SequentialModel:
    """Small conv net: enough layers for the weight cache to matter."""
    c1 = Conv2dSpec(3, 16, kernel=3, padding=1)
    c2 = Conv2dSpec(16, 16, kernel=3, padding=1)
    fc = LinearSpec(16 * 8 * 8, 10)
    ops = [
        Conv2d(c1, SequentialModel.random_weights_conv(c1, rng), name="conv0"),
        ReLU(),
        MaxPool2d(2, 2),
        Conv2d(c2, SequentialModel.random_weights_conv(c2, rng), name="conv1"),
        ReLU(),
        Flatten(),
        Linear(fc, SequentialModel.random_weights_linear(fc, rng), name="fc"),
    ]
    return SequentialModel(ops, name="bench-cnn")


def bench_inference(*, passes: int, seed: int) -> dict:
    """Cold vs warm protected forward passes on one engine."""
    rng = np.random.default_rng(seed)
    model = build_model(rng)
    x = (rng.standard_normal((4, 3, 16, 16)) * 0.5).astype(np.float16)

    engine = ProtectedInference(model, scheme_from_token("global"))
    t0 = time.perf_counter()
    engine.run(x)
    cold_s = time.perf_counter() - t0

    EXECUTION_STATS.reset()
    t0 = time.perf_counter()
    for _ in range(passes):
        engine.run(x)
    warm_s = (time.perf_counter() - t0) / passes
    warm_weight_reductions = EXECUTION_STATS.weight_reductions

    return {
        "scheme": "global",
        "linear_layers": len(model.linear_names),
        "warm_passes": passes,
        "cold_pass_s": cold_s,
        "warm_pass_s": warm_s,
        "speedup": cold_s / warm_s,
        "warm_weight_reductions": warm_weight_reductions,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small trial counts for CI smoke runs")
    parser.add_argument("--trials", type=int, default=None,
                        help=f"campaign trials (default {DEFAULT_TRIALS})")
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_prepared.json")
    args = parser.parse_args()

    trials = args.trials if args.trials is not None else (
        25 if args.quick else DEFAULT_TRIALS
    )
    if trials <= 0:
        parser.error(f"--trials must be positive, got {trials}")
    passes = 3 if args.quick else 10
    repeats = 1 if args.quick else 5

    report = {
        "benchmark": "prepared-execution engine",
        "quick": args.quick,
        "campaign_problem": {"m": DEFAULT_M, "n": DEFAULT_N, "k": DEFAULT_K},
        "campaign": {},
    }
    campaign_rows = [(name, 1) for name in CAMPAIGN_SCHEMES]
    campaign_rows.append(("global_multi", MULTI_FAULTS_PER_TRIAL))
    for name, faults_per_trial in campaign_rows:
        key = name if faults_per_trial == 1 else MULTI_FAULT_KEY
        report["campaign"][key] = bench_campaign(
            name, trials=trials, seed=17, repeats=repeats,
            faults_per_trial=faults_per_trial,
        )
        row = report["campaign"][key]
        print(f"campaign[{key}]: direct {row['direct_trials_per_s']:8.1f} "
              f"trials/s -> dense {row['paths']['dense']['trials_per_s']:8.1f} "
              f"({row['paths']['dense']['speedup']:.1f}x) -> sparse "
              f"{row['paths']['sparse']['trials_per_s']:8.1f} "
              f"({row['paths']['sparse']['speedup']:.1f}x, "
              f"{row['paths']['sparse']['speedup'] / row['paths']['dense']['speedup']:.1f}x "
              f"over dense)")

    for key, (token, shape) in TRANSFORMER_INT8_ROWS.items():
        report["campaign"][key] = bench_campaign(
            token, trials=trials, seed=17, repeats=repeats, shape=shape
        )
        report["campaign"][key]["scheme"] = token
        row = report["campaign"][key]
        print(f"campaign[{key}]: {token} on "
              f"{shape[0]}x{shape[1]}x{shape[2]}: direct "
              f"{row['direct_trials_per_s']:8.1f} trials/s -> sparse "
              f"{row['paths']['sparse']['trials_per_s']:8.1f} "
              f"({row['paths']['sparse']['speedup']:.1f}x)")

    report["campaign"][SHARDED_KEY] = bench_sharded_campaign(
        trials=SHARDED_TRIALS_QUICK if args.quick else SHARDED_TRIALS,
        seed=17, repeats=repeats,
    )
    row = report["campaign"][SHARDED_KEY]
    print(f"campaign[{SHARDED_KEY}]: 1-proc "
          f"{row['direct_trials_per_s']:8.1f} trials/s -> "
          f"{row['workers']} workers "
          f"{row['paths']['sharded']['trials_per_s']:8.1f} "
          f"({row['paths']['sharded']['speedup']:.1f}x on "
          f"{row['cores']} cores)")

    report["campaign"][SESSION_KEY] = bench_session_campaign(
        trials=trials, seed=17, repeats=repeats
    )
    row = report["campaign"][SESSION_KEY]
    print(f"campaign[{SESSION_KEY}]: raw {row['direct_trials_per_s']:8.1f} "
          f"trials/s vs session "
          f"{row['paths']['session']['trials_per_s']:8.1f} "
          f"(parity {row['paths']['session']['speedup']:.2f}x, "
          f"{row['scheme']} on {row['model']}/{row['layer']})")

    report["campaign"][SDC_KEY] = bench_sdc_e2e(
        trials=trials, seed=17, repeats=repeats
    )
    row = report["campaign"][SDC_KEY]
    print(f"campaign[{SDC_KEY}]: direct {row['direct_trials_per_s']:8.1f} "
          f"trials/s -> e2e {row['paths']['e2e']['trials_per_s']:8.1f} "
          f"({row['paths']['e2e']['speedup']:.1f}x, sdc rate "
          f"{row['sdc_rate']:.2f}, {row['n_recovered']}/{row['n_detected']} "
          f"detections recovered)")

    report["campaign"][SERVING_KEY] = bench_fleet_serving(
        requests=SERVING_REQUESTS_QUICK if args.quick else SERVING_REQUESTS,
        seed=17, repeats=repeats,
    )
    row = report["campaign"][SERVING_KEY]
    print(f"campaign[{SERVING_KEY}]: serial "
          f"{row['direct_trials_per_s']:8.1f} req/s vs serving "
          f"{row['paths']['serving']['trials_per_s']:8.1f} "
          f"({row['paths']['serving']['speedup']:.2f}x at concurrency "
          f"{row['concurrency']}, p99 {row['p99_ms']:.0f} ms)")

    report["inference"] = bench_inference(passes=passes, seed=17)
    inf = report["inference"]
    print(f"inference: cold {inf['cold_pass_s'] * 1e3:.1f} ms -> warm "
          f"{inf['warm_pass_s'] * 1e3:.1f} ms ({inf['speedup']:.2f}x), "
          f"warm-pass weight reductions = {inf['warm_weight_reductions']}")

    # The committed BENCH_prepared.json carries a hand-curated
    # ``history`` list — one row per PR, each a snapshot taken on the
    # reference machine when that PR landed.  Rewriting the file
    # preserves that record verbatim; fresh rows are added by hand (see
    # the ROADMAP trajectory table), never synthesized from a run on an
    # arbitrary machine.
    if args.output.exists():
        try:
            prior_history = json.loads(args.output.read_text()).get("history")
        except (json.JSONDecodeError, OSError):
            prior_history = None
        if prior_history:
            report["history"] = prior_history

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Gross sanity floors only — machine-portable by design (a broken
    # batched or sparse path collapses to ~1x).  The real ratchet is
    # check_regression.py against the committed baseline.  Parity rows
    # measure facade overhead against an equally-warm engine, so their
    # floor is "not meaningfully slower than raw", not an amortization
    # multiple; the e2e SDC row pays full forward-pass physics on both
    # sides (plus recovery verification on the campaign side), so its
    # floor is "never slower than naive per-trial re-execution".
    floor = 1.5 if args.quick else 3.0
    parity_floor = 0.5
    e2e_floor = 1.0
    serving_floor = 0.5
    slowest = min(
        path["speedup"]
        for r in report["campaign"].values()
        if r.get("gate") is None
        for path in r["paths"].values()
    )
    if slowest < floor:
        raise SystemExit(
            f"campaign speedup regression: slowest scheme/path at "
            f"{slowest:.2f}x (floor is {floor}x)"
        )
    # The sharded fan-out only has a sanity floor where there are
    # physical cores to fan out to; a small box records an honest
    # (slower) number and the committed-baseline gate skips it.
    sharded_row = report["campaign"][SHARDED_KEY]
    if (sharded_row["cores"] or 0) >= SHARDED_MIN_CORES:
        sharded = sharded_row["paths"]["sharded"]["speedup"]
        sharded_floor = 1.5 if args.quick else 3.0
        if sharded < sharded_floor:
            raise SystemExit(
                f"sharded campaign regression: {sharded:.2f}x over "
                f"single-process on {sharded_row['cores']} cores "
                f"(floor is {sharded_floor}x)"
            )
    for gate, gate_floor, what in (
        ("parity", parity_floor, "facade overhead"),
        ("e2e", e2e_floor, "end-to-end SDC campaign"),
        ("serving", serving_floor, "concurrent serving"),
    ):
        gated = min(
            (
                path["speedup"]
                for r in report["campaign"].values()
                if r.get("gate") == gate
                for path in r["paths"].values()
            ),
            default=gate_floor,
        )
        if gated < gate_floor:
            raise SystemExit(
                f"{what} regression: {gated:.2f}x of the direct path "
                f"(floor is {gate_floor}x)"
            )


if __name__ == "__main__":
    main()
