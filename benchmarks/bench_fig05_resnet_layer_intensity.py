"""Fig. 5 — per-layer arithmetic intensity of ResNet-50 on HD inputs.

Regenerates the scatter series (layer index -> AI) and checks the
paper's range of ~1 to ~511.
"""

from repro.experiments import fig05_resnet_layer_intensity
from repro.experiments.fig05_layers import fig05_summary


def bench_fig05(benchmark, emit):
    table = benchmark(fig05_resnet_layer_intensity)
    emit("fig05_resnet_layer_intensity", table)
    summary = fig05_summary()
    assert abs(summary["min"] - 1.0) < 0.05
    assert abs(summary["max"] - 511) / 511 < 0.01
