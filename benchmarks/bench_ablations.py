"""Ablation benches over the design choices DESIGN.md calls out."""

from repro.experiments import (
    ablation_check_overlap,
    ablation_device_sweep,
    ablation_thread_tile,
)


def bench_ablation_check_overlap(benchmark, emit):
    table = benchmark(ablation_check_overlap)
    emit("ablation_check_overlap", table)


def bench_ablation_thread_tile(benchmark, emit):
    table = benchmark(ablation_thread_tile)
    emit("ablation_thread_tile", table)


def bench_ablation_device_sweep(benchmark, emit):
    table = benchmark(ablation_device_sweep)
    emit("ablation_device_sweep", table)
