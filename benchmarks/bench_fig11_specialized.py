"""Fig. 11 — specialized CNNs at batch 64.

Checks that intensity-guided ABFT beats global on every specialized CNN
and that these low-intensity models choose thread-level ABFT for their
convolutions.
"""

from repro.core import IntensityGuidedABFT
from repro.experiments import fig11_specialized
from repro.gpu import T4
from repro.nn import build_model
from repro.nn.models.registry import SPECIALIZED_CNNS


def bench_fig11(benchmark, emit):
    table = benchmark(fig11_specialized)
    emit("fig11_specialized", table)

    guided = IntensityGuidedABFT(T4)
    for name in SPECIALIZED_CNNS:
        sel = guided.select_for_model(build_model(name))
        assert sel.guided_overhead_percent < sel.scheme_overhead_percent("global"), name
        # These low-intensity models assign most layers to thread-level.
        assert sel.selection_counts.get("thread_onesided", 0) > len(sel.layers) / 2
