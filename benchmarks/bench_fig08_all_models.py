"""Fig. 8 — overhead of global vs intensity-guided ABFT, all 14 NNs.

Checks the paper's headline invariants: guided never loses to global,
the reduction envelope is 1x-6x with a >2x spread, and the largest
gains land on the low-intensity models.
"""

from repro.core import IntensityGuidedABFT
from repro.experiments import fig08_all_models
from repro.gpu import T4
from repro.nn import build_model, list_models


def bench_fig08(benchmark, emit):
    table = benchmark(fig08_all_models)
    emit("fig08_all_models", table)

    guided = IntensityGuidedABFT(T4)
    factors = {}
    for name in list_models():
        sel = guided.select_for_model(build_model(name))
        g = sel.scheme_overhead_percent("global")
        i = sel.guided_overhead_percent
        assert i <= g + 1e-9, name  # guided never worse than global
        factors[name] = g / i
    assert 1.0 <= min(factors.values())
    assert max(factors.values()) <= 6.0
    assert min(factors["mlp_bottom"], factors["mlp_top"]) > max(
        factors["alexnet"], factors["vgg16"]
    )
