#!/usr/bin/env python3
"""Fault-injection campaign: measure detection coverage per scheme.

Runs randomized single-fault campaigns (the paper's §2.3 fault model —
one corrupted output value per GEMM) against every protecting scheme
and prints detection coverage, plus a demonstration of the numerical
sensitivity hierarchy between global and thread-level checks and of
the §2.4 multi-fault extension (r independent checksums detect up to
r simultaneous faults; sweeps share one prepared state through a
PreparedCache).
"""

import argparse

import numpy as np

import repro
from repro import MultiChecksumGlobalABFT, PreparedCache
from repro.faults import FaultCampaign, FaultKind, FaultSpec
from repro.utils import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=80,
                        help="single-fault trials per scheme (default 80; "
                             "CI smoke runs use a small count)")
    args = parser.parse_args()
    if args.trials <= 0:
        parser.error(f"--trials must be positive, got {args.trials}")

    rng = np.random.default_rng(21)
    a = (rng.standard_normal((128, 96)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((96, 64)) * 0.5).astype(np.float16)

    table = Table(
        ["scheme", "trials", "significant", "coverage", "sensitivity floor"],
        title=(f"Single-fault campaigns (128x64x96 FP16 GEMM, "
               f"{args.trials} trials each)"),
    )
    for name in repro.list_schemes():
        scheme = repro.get_scheme(name)
        if not scheme.protects:
            continue
        campaign = FaultCampaign(scheme, a, b, seed=21)
        result = campaign.run(args.trials)
        table.add_row([
            name, result.n_trials, result.n_significant,
            f"{result.coverage * 100:.1f}%", campaign.tolerance_scale,
        ])
        assert result.coverage == 1.0
    print(table.render())

    # Sensitivity hierarchy: a small corruption below the global scalar
    # check's rounding-noise floor is still caught per-tile.
    small = FaultSpec(row=5, col=5, kind=FaultKind.ADD, value=0.8)
    global_hit = repro.get_scheme("global").execute(a, b, faults=[small]).detected
    thread_hit = repro.get_scheme("thread_onesided").execute(a, b, faults=[small]).detected
    print(f"\nsmall fault (+0.8): global detected={global_hit}, "
          f"thread-level detected={thread_hit}")
    print("thread-level ABFT's per-tile checks resolve corruptions the "
          "whole-output scalar check cannot — a numerical bonus on top of "
          "its performance advantage for bandwidth-bound layers.")

    # Multi-fault trials (paper §2.4): r independent weighted checksums
    # detect up to r simultaneous faults.  The sweep over fault counts
    # shares one prepared state through a PreparedCache, so the clean
    # GEMM runs once for all three campaigns.
    cache = PreparedCache()
    scheme = MultiChecksumGlobalABFT(2)
    print("\nglobal_multi (r=2), coverage by simultaneous-fault count:")
    for faults_per_trial in (1, 2, 3):
        campaign = FaultCampaign(scheme, a, b, seed=21, cache=cache)
        result = campaign.run_batch(
            max(args.trials // 2, 8), faults_per_trial=faults_per_trial
        )
        guarantee = "guaranteed" if faults_per_trial <= 2 else "best-effort"
        print(f"  {faults_per_trial} fault(s)/trial: "
              f"{result.coverage * 100:5.1f}% over {result.n_significant} "
              f"significant trials ({guarantee})")
        if faults_per_trial <= 2:
            assert result.coverage == 1.0
    assert cache.hits == 2 and cache.misses == 1


if __name__ == "__main__":
    main()
