#!/usr/bin/env python3
"""Fault-injection campaigns through the deployment facade.

Deploys DLRM MLP-Bottom (batch 32) under every protecting scheme via
``repro.deploy`` with a fixed policy, runs randomized single-fault
campaigns (the paper's §2.3 fault model) against the same deployed
layer through each session, and prints detection coverage.  Then two
refinements on the same layer GEMM: the numerical sensitivity
hierarchy between global and thread-level checks, and the §2.4
multi-fault extension (r independent checksums detect up to r
simultaneous faults; the sweep's campaigns share one prepared state
through the session's cache).
"""

import argparse

import repro
from repro.utils import Table

MODEL, LAYER, BATCH = "mlp_bottom", "fc2", 32


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=80,
                        help="single-fault trials per scheme (default 80; "
                             "CI smoke runs use a small count)")
    args = parser.parse_args()
    if args.trials <= 0:
        parser.error(f"--trials must be positive, got {args.trials}")

    # One session per scheme: same model, same seed, so every scheme's
    # campaign attacks bit-identical operands of the same deployed layer.
    sessions = {
        name: repro.deploy(MODEL, "T4", batch=BATCH, seed=21,
                           policy=f"fixed:{name}")
        for name in repro.list_schemes()
        if repro.get_scheme(name).protects
    }

    shape = sessions["global"].plan.layer(LAYER)
    table = Table(
        ["scheme", "trials", "significant", "coverage", "sensitivity floor"],
        title=(f"Single-fault campaigns ({MODEL}/{LAYER}: "
               f"{shape.m}x{shape.n}x{shape.k} FP16 GEMM, "
               f"{args.trials} trials each)"),
    )
    campaigns = {}
    for name, session in sessions.items():
        campaign = session.campaign(LAYER, seed=21)
        campaigns[name] = campaign
        result = campaign.run(args.trials)
        table.add_row([
            name, result.n_trials, result.n_significant,
            f"{result.coverage * 100:.1f}%", campaign.tolerance_scale,
        ])
        assert result.coverage == 1.0
    print(table.render())

    # Sensitivity hierarchy: a corruption between the two schemes'
    # rounding-noise floors is invisible to the whole-output scalar
    # check but still caught per-tile.
    small_value = 2.0 * campaigns["thread_onesided"].tolerance_scale
    assert small_value < campaigns["global"].tolerance_scale
    small = repro.FaultSpec(row=5, col=5, kind=repro.FaultKind.ADD,
                            value=small_value)
    global_hit = campaigns["global"].run_trial(small).detected
    thread_hit = campaigns["thread_onesided"].run_trial(small).detected
    print(f"\nsmall fault (+{small_value:.2g}): global detected={global_hit}, "
          f"thread-level detected={thread_hit}")
    assert thread_hit and not global_hit
    print("thread-level ABFT's per-tile checks resolve corruptions the "
          "whole-output scalar check cannot — a numerical bonus on top of "
          "its performance advantage for bandwidth-bound layers.")

    # Multi-fault trials (paper §2.4): r independent weighted checksums
    # detect up to r simultaneous faults.  One session, one prepared
    # state: the sweep over fault counts shares the session cache, so
    # the clean GEMM runs once for all three campaigns.
    session = repro.deploy(MODEL, "T4", batch=BATCH, seed=21,
                           policy="fixed:global_multi:2")
    print("\nglobal_multi:2, coverage by simultaneous-fault count "
          f"(on {MODEL}/{LAYER}):")
    for faults_per_trial in (1, 2, 3):
        campaign = session.campaign(LAYER, seed=21)
        result = campaign.run_batch(
            max(args.trials // 2, 8), faults_per_trial=faults_per_trial
        )
        guarantee = "guaranteed" if faults_per_trial <= 2 else "best-effort"
        print(f"  {faults_per_trial} fault(s)/trial: "
              f"{result.coverage * 100:5.1f}% over {result.n_significant} "
              f"significant trials ({guarantee})")
        if faults_per_trial <= 2:
            assert result.coverage == 1.0
    assert session.cache.hits == 2 and session.cache.misses == 1


if __name__ == "__main__":
    main()
