#!/usr/bin/env python3
"""Quickstart: deploy a model under intensity-guided ABFT, end to end.

The paper's whole workflow through the deployment facade, in three
moves:

1. ``repro.deploy`` — build the model, run the intensity-guided policy
   on a T4, get back a running :class:`~repro.api.ProtectedSession`
   (the per-layer plan is serializable: ``repro deploy --json``),
2. run a fault-injection campaign against one deployed layer — the
   campaign shares the session's prepared state, so the clean GEMM ran
   exactly once,
3. inject a single soft error into a protected pass and watch the
   per-layer checksum comparison flag it.
"""

import repro
from repro.api import layer_plan_table


def main() -> None:
    # --- 1. deploy: model + device + policy -> protected session ------
    session = repro.deploy("mlp_bottom", "T4", batch=64)
    plan = session.plan
    print(layer_plan_table(plan).render())
    print(f"\nuniform global overhead : "
          f"{plan.scheme_overhead_percent('global'):6.2f}%")
    print(f"deployed plan overhead  : {plan.guided_overhead_percent:6.2f}%")

    # The plan round-trips through JSON: what `repro deploy --json`
    # prints is loadable deployment input anywhere.
    restored = repro.DeploymentPlan.from_json(plan.to_json())
    assert restored == plan

    # --- 2. a fault campaign against one deployed layer ---------------
    campaign = session.campaign(layer="fc1", seed=7)
    result = campaign.run_batch(60)
    print(f"\ncampaign on fc1: {result.n_trials} trials, "
          f"{result.n_significant} significant, "
          f"coverage {result.coverage * 100:.1f}%")
    assert result.coverage == 1.0, "a significant fault escaped ABFT"

    # --- 3. one soft error through a protected pass --------------------
    fault = repro.FaultSpec(
        row=10, col=20, kind=repro.FaultKind.BITFLIP_FP32, bit=26
    )
    outcome = session.run(faults={"fc1": [fault]})
    flagged = [rec.name for rec in outcome.layer_outcomes if rec.detected]
    print(f"\ninjected exponent flip into fc1: detected={outcome.detected}, "
          f"flagged layers={flagged}")
    assert outcome.detected and flagged == ["fc1"]


if __name__ == "__main__":
    main()
