#!/usr/bin/env python3
"""Quickstart: protect one GEMM with ABFT and catch an injected fault.

Walks the paper's Fig. 1 idea end to end on real numbers:

1. run an FP16 GEMM through one-sided thread-level ABFT,
2. inject a soft-error bit flip into one output accumulator,
3. watch the checksum comparison flag it,
4. ask intensity-guided ABFT which scheme this GEMM should use on a T4.
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(0)
    m, n, k = 96, 64, 80
    a = (rng.standard_normal((m, k)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((k, n)) * 0.5).astype(np.float16)

    # --- 1. a clean protected GEMM ------------------------------------
    scheme = repro.ThreadLevelOneSided()
    clean = scheme.execute(a, b)
    print(f"clean run:   detected={clean.detected}  "
          f"(checks evaluated: {clean.verdict.checks})")

    # --- 2./3. inject a single soft error -----------------------------
    fault = repro.FaultSpec(row=10, col=20, kind=repro.FaultKind.BITFLIP_FP32, bit=26)
    faulty = scheme.execute(a, b, faults=[fault])
    print(f"faulty run:  detected={faulty.detected}  "
          f"violated checks: {faulty.verdict.violations}")
    assert faulty.detected, "a flipped exponent bit must not escape ABFT"

    # --- 4. which scheme does intensity-guided ABFT pick? -------------
    t4 = repro.get_gpu("T4")
    problem = repro.GemmProblem(m, n, k)
    guided = repro.IntensityGuidedABFT(t4)
    selection = guided.select_for_problem(problem, name="quickstart-gemm")
    print(f"\nGEMM {m}x{n}x{k}: arithmetic intensity = {selection.intensity:.1f} "
          f"vs T4 CMR = {t4.cmr:.0f}")
    for scheme_name, time_s in selection.scheme_times_s.items():
        overhead = selection.overhead_percent(scheme_name)
        print(f"  {scheme_name:16s} modeled time {time_s * 1e6:7.2f} us "
              f"(overhead {overhead:5.1f}%)")
    print(f"  -> chosen: {selection.chosen} "
          f"(bandwidth-bound layers prefer thread-level ABFT)")


if __name__ == "__main__":
    main()
