#!/usr/bin/env python3
"""How the intensity-guided selection moves with the device (paper §7.1).

The same NN splits differently between global and thread-level ABFT
depending on the device's compute-to-memory-bandwidth ratio: high-CMR
inference GPUs (T4, A100, Jetson) leave more layers bandwidth bound,
shifting the selection toward thread-level ABFT; the Tensor-Core-less
P4 (CMR 57) pushes almost everything to global.
"""

import repro
from repro.utils import Table


def main() -> None:
    for model_name in ("resnet50", "mlp_bottom", "coral"):
        model = repro.build_model(model_name)
        table = Table(
            ["device", "CMR", "thread layers", "global layers",
             "global (%)", "guided (%)", "reduction"],
            title=f"{model_name} (aggregate AI {model.aggregate_intensity():.1f})",
        )
        for device in repro.list_gpus():
            spec = repro.get_gpu(device)
            selection = repro.IntensityGuidedABFT(spec).select_for_model(model)
            counts = selection.selection_counts
            global_pct = selection.scheme_overhead_percent("global")
            guided_pct = selection.guided_overhead_percent
            table.add_row([
                spec.name, spec.cmr,
                counts.get("thread_onesided", 0), counts.get("global", 0),
                global_pct, guided_pct,
                global_pct / guided_pct if guided_pct > 0 else float("inf"),
            ])
        print(table.render())
        print()


if __name__ == "__main__":
    main()
