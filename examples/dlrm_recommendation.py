#!/usr/bin/env python3
"""Protected DLRM recommendation inference (numeric, end to end).

Builds a runnable DLRM MLP-Bottom (13 dense features -> 512 -> 256 ->
64) and deploys it with ``repro.deploy``: the intensity-guided policy
picks each layer's scheme for a T4 at batch 1 (they are all bandwidth
bound, so thread-level ABFT wins everywhere — Fig. 10), and the
returned session runs real FP16 inference through a
:class:`~repro.nn.ProtectedInference` sharing one prepared cache.
Then a soft error is injected into the middle layer and the per-layer
checks catch it, and a fault campaign attacks the very GEMM the
forward pass executed — without re-running its clean half.
"""

import numpy as np

import repro
from repro.gemm import EXECUTION_STATS
from repro.nn.inference import Linear, ReLU, SequentialModel
from repro.nn.layers import LinearSpec


def build_runnable_mlp_bottom(rng: np.random.Generator) -> SequentialModel:
    """A numerically runnable MLP-Bottom with random FP16 weights.

    Layer names match the model zoo's shape graph (``fc0``/``fc1``/
    ``fc2``), so the deployment plan maps onto it directly.
    """
    dims = [13, 512, 256, 64]
    ops = []
    for i, (fin, fout) in enumerate(zip(dims, dims[1:])):
        spec = LinearSpec(fin, fout)
        ops.append(Linear(spec, SequentialModel.random_weights_linear(spec, rng),
                          name=f"fc{i}"))
        if i < len(dims) - 2:
            ops.append(ReLU())
    return SequentialModel(ops, name="mlp_bottom")


def main() -> None:
    rng = np.random.default_rng(7)

    # --- deploy: policy-chosen schemes wrapping the runnable model -----
    session = repro.deploy(
        "mlp_bottom", "T4", batch=1, runnable=build_runnable_mlp_bottom(rng)
    )
    plan = session.plan
    print("per-layer choices for DLRM MLP-Bottom on T4 (batch 1):")
    for layer in plan:
        print(f"  {layer.name:6s} AI={layer.intensity:6.1f} "
              f"-> {layer.scheme}")
    print(f"global ABFT overhead      : "
          f"{plan.scheme_overhead_percent('global'):.2f}%")
    print(f"intensity-guided overhead : {plan.guided_overhead_percent:.2f}%")

    # --- run it numerically, with per-layer scheme assignment ----------
    features = (rng.standard_normal((1, 13)) * 0.5).astype(np.float16)
    clean = session.run(features)
    print(f"\nclean inference: detected={clean.detected}, "
          f"embedding norm={np.linalg.norm(clean.output.astype(np.float32)):.3f}")

    # --- inject a soft error into the 512->256 layer -------------------
    fault = repro.FaultSpec(row=0, col=100, kind=repro.FaultKind.ADD, value=40.0)
    faulty = session.run(features, faults={"fc1": [fault]})
    flagged = [rec.name for rec in faulty.layer_outcomes if rec.detected]
    print(f"faulty inference: detected={faulty.detected}, flagged layers={flagged}")
    assert faulty.detected and flagged == ["fc1"]
    print("the corrupted layer was localized; the request can be re-executed.")

    # --- campaign the layer the passes actually executed ---------------
    EXECUTION_STATS.reset()
    result = session.campaign(layer="fc1", seed=7).run_batch(40)
    assert EXECUTION_STATS.gemms == 0, "campaign should reuse the passes' GEMM"
    print(f"\nfault campaign on fc1 (clean GEMM reused from the forward "
          f"passes): coverage {result.coverage * 100:.1f}% over "
          f"{result.n_significant} significant faults")
    assert result.coverage == 1.0


if __name__ == "__main__":
    main()
