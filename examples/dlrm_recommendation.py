#!/usr/bin/env python3
"""Protected DLRM recommendation inference (numeric, end to end).

Builds a runnable DLRM MLP-Bottom (13 dense features -> 512 -> 256 ->
64), assigns each layer the scheme intensity-guided ABFT picks for a
T4 at batch 1 (they are all bandwidth bound, so thread-level ABFT wins
everywhere — Fig. 10), runs real FP16 inference, then injects a soft
error into the middle layer and shows the per-layer checks catching it.
"""

import numpy as np

import repro
from repro.nn.inference import Linear, ReLU, SequentialModel
from repro.nn.layers import LinearSpec


def build_runnable_mlp_bottom(rng: np.random.Generator) -> SequentialModel:
    """A numerically runnable MLP-Bottom with random FP16 weights."""
    dims = [13, 512, 256, 64]
    ops = []
    for i, (fin, fout) in enumerate(zip(dims, dims[1:])):
        spec = LinearSpec(fin, fout)
        ops.append(Linear(spec, SequentialModel.random_weights_linear(spec, rng),
                          name=f"fc{i}"))
        if i < len(dims) - 2:
            ops.append(ReLU())
    return SequentialModel(ops, name="mlp_bottom")


def main() -> None:
    rng = np.random.default_rng(7)
    t4 = repro.get_gpu("T4")

    # --- what would intensity-guided ABFT deploy? ----------------------
    shape_model = repro.build_model("mlp_bottom", batch=1)
    guided = repro.IntensityGuidedABFT(t4)
    selection = guided.select_for_model(shape_model)
    print("per-layer choices for DLRM MLP-Bottom on T4 (batch 1):")
    for layer in selection.layers:
        print(f"  {layer.layer_name:6s} AI={layer.intensity:6.1f} "
              f"-> {layer.chosen}")
    print(f"global ABFT overhead      : "
          f"{selection.scheme_overhead_percent('global'):.2f}%")
    print(f"intensity-guided overhead : {selection.guided_overhead_percent:.2f}%")

    # --- run it numerically, with per-layer scheme assignment ----------
    model = build_runnable_mlp_bottom(rng)
    schemes = {
        layer.layer_name.split("/")[-1]: repro.get_scheme(layer.chosen)
        for layer in selection.layers
    }
    engine = repro.ProtectedInference(model, schemes)

    features = (rng.standard_normal((1, 13)) * 0.5).astype(np.float16)
    clean = engine.run(features)
    print(f"\nclean inference: detected={clean.detected}, "
          f"embedding norm={np.linalg.norm(clean.output.astype(np.float32)):.3f}")

    # --- inject a soft error into the 512->256 layer -------------------
    fault = repro.FaultSpec(row=0, col=100, kind=repro.FaultKind.ADD, value=40.0)
    faulty = engine.run(features, faults={"fc1": [fault]})
    flagged = [rec.name for rec in faulty.layer_outcomes if rec.detected]
    print(f"faulty inference: detected={faulty.detected}, flagged layers={flagged}")
    assert faulty.detected and flagged == ["fc1"]
    print("the corrupted layer was localized; the request can be re-executed.")


if __name__ == "__main__":
    main()
