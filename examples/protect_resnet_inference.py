#!/usr/bin/env python3
"""Intensity-guided ABFT deployment plan for ResNet-50 on a T4.

Reproduces the paper's §5.3 pre-deployment workflow through the
deployment API: ``repro.deploy`` profiles every linear layer of
ResNet-50 (HD inputs, batch 1) under global and thread-level ABFT,
picks the cheaper scheme per layer, and hands back a
:class:`~repro.api.ProtectedSession` whose plan reports the
whole-model overhead against both uniform baselines — the ResNet-50
column of Fig. 9 — and can spin up a fault campaign against any of the
54 deployed layers.
"""

import repro
from repro.api import layer_plan_table


def main() -> None:
    t4 = repro.get_gpu("T4")
    model = repro.build_model("resnet50", h=1080, w=1920)
    print(f"ResNet-50 @ 1080x1920: {len(model)} linear layers, "
          f"aggregate AI = {model.aggregate_intensity():.1f} "
          f"(T4 CMR = {t4.cmr:.0f})")

    session = repro.deploy(model, t4)
    plan = session.plan

    print(f"\nper-layer selection counts: {plan.selection_counts}")
    print(f"thread-level ABFT overhead : "
          f"{plan.scheme_overhead_percent('thread_onesided'):6.2f}%")
    print(f"global ABFT overhead       : "
          f"{plan.scheme_overhead_percent('global'):6.2f}%")
    print(f"intensity-guided overhead  : "
          f"{plan.guided_overhead_percent:6.2f}%")
    reduction = (
        plan.scheme_overhead_percent("global") / plan.guided_overhead_percent
    )
    print(f"reduction vs global        : {reduction:6.2f}x")

    # The first few layers, with intensity and the per-layer winner.
    print()
    print(layer_plan_table(plan, max_rows=12).render())
    print("... (remaining layers omitted)")

    # The session is live: campaign any deployed layer.  The final FC
    # layer is tiny (1x1000x2048), so a quick coverage check is cheap.
    result = session.campaign(layer="fc", seed=3).run_batch(40)
    print(f"\nfault campaign on layer 'fc' ({plan.layer('fc').scheme}): "
          f"{result.n_significant} significant faults, "
          f"coverage {result.coverage * 100:.1f}%")
    assert result.coverage == 1.0


if __name__ == "__main__":
    main()
