#!/usr/bin/env python3
"""Intensity-guided ABFT deployment plan for ResNet-50 on a T4.

Reproduces the paper's §5.3 pre-deployment workflow: profile every
linear layer of ResNet-50 (HD inputs, batch 1) under global and
thread-level ABFT, pick the cheaper scheme per layer, and report the
whole-model overhead against both uniform baselines — the ResNet-50
column of Fig. 9.
"""

import repro
from repro.core import layer_selection_table


def main() -> None:
    t4 = repro.get_gpu("T4")
    model = repro.build_model("resnet50", h=1080, w=1920)
    print(f"ResNet-50 @ 1080x1920: {len(model)} linear layers, "
          f"aggregate AI = {model.aggregate_intensity():.1f} "
          f"(T4 CMR = {t4.cmr:.0f})")

    guided = repro.IntensityGuidedABFT(t4)
    selection = guided.select_for_model(model)

    print(f"\nper-layer selection counts: {selection.selection_counts}")
    print(f"thread-level ABFT overhead : "
          f"{selection.scheme_overhead_percent('thread_onesided'):6.2f}%")
    print(f"global ABFT overhead       : "
          f"{selection.scheme_overhead_percent('global'):6.2f}%")
    print(f"intensity-guided overhead  : "
          f"{selection.guided_overhead_percent:6.2f}%")
    reduction = (
        selection.scheme_overhead_percent("global")
        / selection.guided_overhead_percent
    )
    print(f"reduction vs global        : {reduction:6.2f}x")

    # The first/last few layers, with intensity and the per-layer winner.
    print()
    print(layer_selection_table(selection, max_rows=12).render())
    print("... (remaining layers omitted)")


if __name__ == "__main__":
    main()
