#!/usr/bin/env python3
"""Fleet deployment + asyncio serving through shared sessions.

The fleet workflow end to end (DESIGN.md §5):

1. ``repro.deploy_fleet`` — sweep a model zoo slice across a device
   fleet under one policy; same-family devices share one prepared
   cache, and every plan lands versioned in a :class:`PlanRegistry`,
2. ``repro.plan_diff`` — render what actually differs between two
   devices' plans for the same model,
3. :class:`repro.SessionServer` — drive ~100 concurrent requests
   through one shared session behind an asyncio concurrency gate and
   report throughput and tail latency; a faulted request is detected
   in-stream, exactly as a serial pass would detect it.
"""

import argparse
import asyncio

import numpy as np

import repro

MODELS = ["mlp_bottom", "mlp_top"]
DEVICES = ["V100", "Jetson-AGX-Xavier"]


async def drive(server: repro.SessionServer, requests: int):
    """Mixed traffic: clean batch + one faulted request, concurrently."""
    fault = repro.FaultSpec(
        row=3, col=5, kind=repro.FaultKind.BITFLIP_FP32, bit=26
    )
    layer = server.session.plan.layer_names[0]
    faulted = asyncio.ensure_future(
        server.handle(faults={layer: [fault]})
    )
    report = await server.serve(requests, concurrency=8)
    outcome = await faulted
    return report, outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=100,
                        help="clean requests to serve (default 100)")
    args = parser.parse_args()

    # --- 1. one sweep: models x devices, shared per-family caches -----
    fleet = repro.deploy_fleet(MODELS, DEVICES, policy="guided", batch=32)
    print(fleet.summary().render())
    print(f"\nregistry holds {len(fleet.registry)} plan(s) across "
          f"{len(fleet.sessions)} deployments")

    # --- 2. what changed between devices, per the registry ------------
    diff = repro.plan_diff(
        fleet.registry.get(MODELS[0], DEVICES[0]),
        fleet.registry.get(MODELS[0], DEVICES[1]),
    )
    print(f"\n{MODELS[0]}: {DEVICES[0]} -> {DEVICES[1]}")
    print(diff.render())

    # --- 3. serve concurrent traffic through one shared session -------
    session = fleet.session(MODELS[0], DEVICES[0])
    with repro.SessionServer(session, max_workers=4) as server:
        report, outcome = asyncio.run(drive(server, args.requests))
    print(f"\n{report.render()}")
    assert report.requests == args.requests
    # The faulted request rides the same window as the clean batch, so
    # the report may tally its detection — but never more than that
    # one: clean traffic through a shared session raises no alarms.
    assert report.detected_requests <= 1, "clean traffic raised a detection"
    assert outcome.detected, "the faulted request escaped detection"
    print("faulted request detected in-stream: "
          f"{[r.name for r in outcome.layer_outcomes if r.detected]}")

    # Serving changed nothing numerically: one more serial pass gives
    # the bit-identical clean output.
    np.testing.assert_array_equal(
        session.run().output, repro.deploy(
            MODELS[0], DEVICES[0], policy="guided", batch=32
        ).run().output,
    )
    print("serial re-check: bit-identical clean output")


if __name__ == "__main__":
    main()
